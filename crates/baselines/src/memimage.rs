//! Shallow memory-image codec for the CRIU-style baselines.
//!
//! An OS-level snapshot copies raw pages: each object's bytes land in the
//! image *at its address*, child pointers and all, and restore pieces the
//! process back together by re-linking pointers. This codec mirrors that:
//! every record is one object encoded **shallowly** — its children stored
//! as raw object handles (the "pointers"), not recursively — and a restore
//! accumulates records across a full-plus-overlays chain, then re-links
//! reachable records into a fresh heap. Unlike the application-level pickle
//! there is no reduction protocol, which is exactly why the CRIU baselines
//! can dump generators but die on off-process state (Table 4).

use std::collections::HashMap;

use kishu_kernel::{ClassId, Heap, ObjId, ObjKind};
use kishu_pickle::varint::{read_i64, read_u64, write_i64, write_u64};

use crate::MethodError;

const MAGIC: &[u8; 4] = b"KMEM";

/// Encode a memory image: the namespace table plus shallow records of
/// `objs`. `full` marks base snapshots (as opposed to dirty-page overlays).
pub fn encode_image(
    heap: &Heap,
    bindings: &[(String, ObjId)],
    objs: &[ObjId],
    full: bool,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(full as u8);
    write_u64(&mut out, bindings.len() as u64);
    for (name, root) in bindings {
        write_str(&mut out, name);
        write_u64(&mut out, root.0 as u64);
    }
    write_u64(&mut out, objs.len() as u64);
    for id in objs {
        write_u64(&mut out, id.0 as u64);
        encode_shallow(&mut out, heap.kind(*id));
    }
    out
}

/// Decode a base-plus-overlays chain and materialize the final state into
/// `heap`. Returns the namespace bindings of the last image. This is the
/// "piece together the memory snapshot from multiple checkpoint files" step
/// that makes CRIU-Incremental's restore slow (§7.5.1).
pub fn decode_chain(
    blobs: &[Vec<u8>],
    heap: &mut Heap,
) -> Result<Vec<(String, ObjId)>, MethodError> {
    if blobs.is_empty() {
        return Err(MethodError::Io("empty image chain".into()));
    }
    let mut records: HashMap<u32, ShallowKind> = HashMap::new();
    let mut last_bindings: Vec<(String, u32)> = Vec::new();
    for blob in blobs {
        let (bindings, objs) = decode_image(blob)?;
        last_bindings = bindings;
        for (id, kind) in objs {
            records.insert(id, kind); // later overlays override
        }
    }
    // Materialize everything reachable from the final namespace.
    let mut memo: HashMap<u32, ObjId> = HashMap::new();
    let mut out = Vec::with_capacity(last_bindings.len());
    for (name, root) in last_bindings {
        let obj = materialize(root, &records, &mut memo, heap)?;
        out.push((name, obj));
    }
    Ok(out)
}

fn materialize(
    id: u32,
    records: &HashMap<u32, ShallowKind>,
    memo: &mut HashMap<u32, ObjId>,
    heap: &mut Heap,
) -> Result<ObjId, MethodError> {
    if let Some(obj) = memo.get(&id) {
        return Ok(*obj);
    }
    let rec = records
        .get(&id)
        .ok_or_else(|| MethodError::Io(format!("dangling pointer to object {id}")))?
        .clone();
    // Allocate a placeholder first so cycles re-link correctly.
    let obj = heap.alloc(ObjKind::None);
    memo.insert(id, obj);
    let kind = rec.link(records, memo, heap)?;
    heap.replace(obj, kind);
    Ok(obj)
}

/// Shallow object kind: children are raw ids, not recursive structures.
#[derive(Debug, Clone)]
enum ShallowKind {
    None,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    List(Vec<u32>),
    Tuple(Vec<u32>),
    Set(Vec<u32>),
    Dict(Vec<(u32, u32)>),
    NdArray(Vec<f64>),
    Series(String, u32),
    DataFrame(Vec<(String, u32)>),
    Instance(String, Vec<(String, u32)>),
    Function(String, Vec<String>, String),
    Generator(u64),
    External(u16, Vec<(String, u32)>, Vec<u8>, u64),
}

impl ShallowKind {
    fn link(
        self,
        records: &HashMap<u32, ShallowKind>,
        memo: &mut HashMap<u32, ObjId>,
        heap: &mut Heap,
    ) -> Result<ObjKind, MethodError> {
        let link_one =
            |id: u32, memo: &mut HashMap<u32, ObjId>, heap: &mut Heap| -> Result<ObjId, MethodError> {
                materialize(id, records, memo, heap)
            };
        Ok(match self {
            ShallowKind::None => ObjKind::None,
            ShallowKind::Bool(b) => ObjKind::Bool(b),
            ShallowKind::Int(v) => ObjKind::Int(v),
            ShallowKind::Float(v) => ObjKind::Float(v),
            ShallowKind::Str(s) => ObjKind::Str(s),
            ShallowKind::List(ids) => ObjKind::List(link_all(ids, records, memo, heap)?),
            ShallowKind::Tuple(ids) => ObjKind::Tuple(link_all(ids, records, memo, heap)?),
            ShallowKind::Set(ids) => ObjKind::Set(link_all(ids, records, memo, heap)?),
            ShallowKind::Dict(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    out.push((link_one(k, memo, heap)?, link_one(v, memo, heap)?));
                }
                ObjKind::Dict(out)
            }
            ShallowKind::NdArray(vs) => ObjKind::NdArray(vs),
            ShallowKind::Series(name, v) => ObjKind::Series {
                name,
                values: link_one(v, memo, heap)?,
            },
            ShallowKind::DataFrame(cols) => {
                let mut out = Vec::with_capacity(cols.len());
                for (n, c) in cols {
                    out.push((n, link_one(c, memo, heap)?));
                }
                ObjKind::DataFrame(out)
            }
            ShallowKind::Instance(class_name, attrs) => {
                let mut out = Vec::with_capacity(attrs.len());
                for (n, v) in attrs {
                    out.push((n, link_one(v, memo, heap)?));
                }
                ObjKind::Instance {
                    class_name,
                    attrs: out,
                }
            }
            ShallowKind::Function(name, params, source) => ObjKind::Function {
                name,
                params,
                source,
            },
            ShallowKind::Generator(token) => ObjKind::Generator { token },
            ShallowKind::External(class, attrs, payload, epoch) => {
                let mut out = Vec::with_capacity(attrs.len());
                for (n, v) in attrs {
                    out.push((n, link_one(v, memo, heap)?));
                }
                ObjKind::External {
                    class: ClassId(class),
                    attrs: out,
                    payload,
                    epoch,
                }
            }
        })
    }
}

fn link_all(
    ids: Vec<u32>,
    records: &HashMap<u32, ShallowKind>,
    memo: &mut HashMap<u32, ObjId>,
    heap: &mut Heap,
) -> Result<Vec<ObjId>, MethodError> {
    ids.into_iter()
        .map(|id| materialize(id, records, memo, heap))
        .collect()
}

// ----------------------------------------------------------------------
// wire format

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn encode_shallow(out: &mut Vec<u8>, kind: &ObjKind) {
    let ids = |out: &mut Vec<u8>, items: &[ObjId]| {
        write_u64(out, items.len() as u64);
        for i in items {
            write_u64(out, i.0 as u64);
        }
    };
    match kind {
        ObjKind::None => out.push(0),
        ObjKind::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        ObjKind::Int(v) => {
            out.push(2);
            write_i64(out, *v);
        }
        ObjKind::Float(v) => {
            out.push(3);
            out.extend_from_slice(&v.to_le_bytes());
        }
        ObjKind::Str(s) => {
            out.push(4);
            write_str(out, s);
        }
        ObjKind::List(items) => {
            out.push(5);
            ids(out, items);
        }
        ObjKind::Tuple(items) => {
            out.push(6);
            ids(out, items);
        }
        ObjKind::Set(items) => {
            out.push(7);
            ids(out, items);
        }
        ObjKind::Dict(pairs) => {
            out.push(8);
            write_u64(out, pairs.len() as u64);
            for (k, v) in pairs {
                write_u64(out, k.0 as u64);
                write_u64(out, v.0 as u64);
            }
        }
        ObjKind::NdArray(vs) => {
            out.push(9);
            write_u64(out, vs.len() as u64);
            for v in vs {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        ObjKind::Series { name, values } => {
            out.push(10);
            write_str(out, name);
            write_u64(out, values.0 as u64);
        }
        ObjKind::DataFrame(cols) => {
            out.push(11);
            write_u64(out, cols.len() as u64);
            for (n, c) in cols {
                write_str(out, n);
                write_u64(out, c.0 as u64);
            }
        }
        ObjKind::Instance { class_name, attrs } => {
            out.push(12);
            write_str(out, class_name);
            write_u64(out, attrs.len() as u64);
            for (n, v) in attrs {
                write_str(out, n);
                write_u64(out, v.0 as u64);
            }
        }
        ObjKind::Function {
            name,
            params,
            source,
        } => {
            out.push(13);
            write_str(out, name);
            write_u64(out, params.len() as u64);
            for p in params {
                write_str(out, p);
            }
            write_str(out, source);
        }
        ObjKind::Generator { token } => {
            out.push(14);
            write_u64(out, *token);
        }
        ObjKind::External {
            class,
            attrs,
            payload,
            epoch,
        } => {
            out.push(15);
            write_u64(out, class.0 as u64);
            write_u64(out, *epoch);
            write_u64(out, payload.len() as u64);
            out.extend_from_slice(payload);
            write_u64(out, attrs.len() as u64);
            for (n, v) in attrs {
                write_str(out, n);
                write_u64(out, v.0 as u64);
            }
        }
    }
}

type DecodedImage = (Vec<(String, u32)>, Vec<(u32, ShallowKind)>);

fn decode_image(blob: &[u8]) -> Result<DecodedImage, MethodError> {
    let bad = |what: &str| MethodError::Io(format!("corrupt memory image: {what}"));
    if blob.len() < 5 || &blob[..4] != MAGIC {
        return Err(bad("magic"));
    }
    let mut pos = 5usize;
    let u = |pos: &mut usize| read_u64(blob, pos).ok_or_else(|| bad("varint"));
    let s = |pos: &mut usize| -> Result<String, MethodError> {
        let len = read_u64(blob, pos).ok_or_else(|| bad("strlen"))? as usize;
        if *pos + len > blob.len() {
            return Err(bad("str bounds"));
        }
        let out = String::from_utf8(blob[*pos..*pos + len].to_vec()).map_err(|_| bad("utf8"))?;
        *pos += len;
        Ok(out)
    };
    let ns_count = u(&mut pos)? as usize;
    let mut bindings = Vec::with_capacity(ns_count.min(1 << 16));
    for _ in 0..ns_count {
        let name = s(&mut pos)?;
        let root = u(&mut pos)? as u32;
        bindings.push((name, root));
    }
    let rec_count = u(&mut pos)? as usize;
    let mut records = Vec::with_capacity(rec_count.min(1 << 20));
    for _ in 0..rec_count {
        let id = u(&mut pos)? as u32;
        let tag = *blob.get(pos).ok_or_else(|| bad("tag"))?;
        pos += 1;
        let id_list = |pos: &mut usize| -> Result<Vec<u32>, MethodError> {
            let n = read_u64(blob, pos).ok_or_else(|| bad("len"))? as usize;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(read_u64(blob, pos).ok_or_else(|| bad("id"))? as u32);
            }
            Ok(v)
        };
        let kind = match tag {
            0 => ShallowKind::None,
            1 => {
                let b = *blob.get(pos).ok_or_else(|| bad("bool"))?;
                pos += 1;
                ShallowKind::Bool(b != 0)
            }
            2 => ShallowKind::Int(read_i64(blob, &mut pos).ok_or_else(|| bad("int"))?),
            3 => {
                if pos + 8 > blob.len() {
                    return Err(bad("float"));
                }
                let v = f64::from_le_bytes(blob[pos..pos + 8].try_into().expect("8 bytes"));
                pos += 8;
                ShallowKind::Float(v)
            }
            4 => ShallowKind::Str(s(&mut pos)?),
            5 => ShallowKind::List(id_list(&mut pos)?),
            6 => ShallowKind::Tuple(id_list(&mut pos)?),
            7 => ShallowKind::Set(id_list(&mut pos)?),
            8 => {
                let n = u(&mut pos)? as usize;
                let mut pairs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let k = u(&mut pos)? as u32;
                    let v = u(&mut pos)? as u32;
                    pairs.push((k, v));
                }
                ShallowKind::Dict(pairs)
            }
            9 => {
                let n = u(&mut pos)? as usize;
                if pos + 8 * n > blob.len() {
                    return Err(bad("array bounds"));
                }
                let mut vs = Vec::with_capacity(n);
                for _ in 0..n {
                    vs.push(f64::from_le_bytes(
                        blob[pos..pos + 8].try_into().expect("8 bytes"),
                    ));
                    pos += 8;
                }
                ShallowKind::NdArray(vs)
            }
            10 => {
                let name = s(&mut pos)?;
                let v = u(&mut pos)? as u32;
                ShallowKind::Series(name, v)
            }
            11 => {
                let n = u(&mut pos)? as usize;
                let mut cols = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let name = s(&mut pos)?;
                    let c = u(&mut pos)? as u32;
                    cols.push((name, c));
                }
                ShallowKind::DataFrame(cols)
            }
            12 => {
                let class_name = s(&mut pos)?;
                let n = u(&mut pos)? as usize;
                let mut attrs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let name = s(&mut pos)?;
                    let v = u(&mut pos)? as u32;
                    attrs.push((name, v));
                }
                ShallowKind::Instance(class_name, attrs)
            }
            13 => {
                let name = s(&mut pos)?;
                let n = u(&mut pos)? as usize;
                let mut params = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    params.push(s(&mut pos)?);
                }
                let source = s(&mut pos)?;
                ShallowKind::Function(name, params, source)
            }
            14 => ShallowKind::Generator(u(&mut pos)?),
            15 => {
                let class = u(&mut pos)? as u16;
                let epoch = u(&mut pos)?;
                let plen = u(&mut pos)? as usize;
                if pos + plen > blob.len() {
                    return Err(bad("payload bounds"));
                }
                let payload = blob[pos..pos + plen].to_vec();
                pos += plen;
                let n = u(&mut pos)? as usize;
                let mut attrs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let name = s(&mut pos)?;
                    let v = u(&mut pos)? as u32;
                    attrs.push((name, v));
                }
                ShallowKind::External(class, attrs, payload, epoch)
            }
            t => return Err(bad(&format!("tag {t}"))),
        };
        records.push((id, kind));
    }
    Ok((bindings, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_minipy::Interp;

    fn run(i: &mut Interp, src: &str) {
        let out = i.run_cell(src).expect("parses");
        assert!(out.error.is_none(), "{:?}", out.error);
    }

    fn full_image(i: &Interp) -> Vec<u8> {
        let bindings: Vec<(String, ObjId)> = i
            .globals
            .bindings()
            .map(|(n, o)| (n.to_string(), o))
            .collect();
        let objs: Vec<ObjId> = i.heap.live_objects().collect();
        encode_image(&i.heap, &bindings, &objs, true)
    }

    #[test]
    fn full_image_roundtrips_state() {
        let mut i = Interp::new();
        run(&mut i, "x = [1, 'two', 3.0]\ny = x\nz = {'k': x}\ng = make_generator()\n");
        let blob = full_image(&i);
        let mut fresh = Interp::new();
        let bindings = decode_chain(&[blob], &mut fresh.heap).expect("decode");
        for (name, obj) in bindings {
            fresh.globals.set_untracked(&name, obj);
        }
        // Values restored.
        let out = fresh.run_cell("x[0] + z['k'][2]\n").expect("runs");
        assert_eq!(out.value_repr.as_deref(), Some("4.0"));
        // Sharing restored (x and y alias).
        let out = fresh.run_cell("id(x) == id(y)\n").expect("runs");
        assert_eq!(out.value_repr.as_deref(), Some("True"));
        // Generators survive an OS-level dump (unlike pickle).
        assert!(fresh.globals.contains("g"));
    }

    #[test]
    fn overlay_overrides_base() {
        let mut i = Interp::new();
        run(&mut i, "ls = [1, 2]\n");
        let base = full_image(&i);
        run(&mut i, "ls.append(3)\n");
        // Overlay: just the mutated object + namespace.
        let ls = i.globals.peek("ls").expect("bound");
        let bindings: Vec<(String, ObjId)> = i
            .globals
            .bindings()
            .map(|(n, o)| (n.to_string(), o))
            .collect();
        let overlay_objs: Vec<ObjId> = i.heap.reachable_from(ls);
        let overlay = encode_image(&i.heap, &bindings, &overlay_objs, false);
        let mut fresh = Interp::new();
        let bindings = decode_chain(&[base, overlay], &mut fresh.heap).expect("decode");
        for (name, obj) in bindings {
            fresh.globals.set_untracked(&name, obj);
        }
        let out = fresh.run_cell("len(ls)\n").expect("runs");
        assert_eq!(out.value_repr.as_deref(), Some("3"));
    }

    #[test]
    fn dangling_pointer_is_an_error() {
        let mut heap = Heap::new();
        let a = heap.alloc(ObjKind::Int(1));
        let ls = heap.alloc(ObjKind::List(vec![a]));
        // Encode the list but not its element.
        let blob = encode_image(&heap, &[("ls".into(), ls)], &[ls], true);
        let mut fresh = Heap::new();
        assert!(matches!(
            decode_chain(&[blob], &mut fresh),
            Err(MethodError::Io(_))
        ));
    }

    #[test]
    fn corrupt_image_is_rejected() {
        let mut fresh = Heap::new();
        assert!(decode_chain(&[vec![0, 1, 2]], &mut fresh).is_err());
        assert!(decode_chain(&[], &mut fresh).is_err());
    }

    #[test]
    fn cycles_relink() {
        let mut i = Interp::new();
        run(&mut i, "a = []\na.append(a)\n");
        let blob = full_image(&i);
        let mut fresh = Interp::new();
        let bindings = decode_chain(&[blob], &mut fresh.heap).expect("decode");
        for (name, obj) in bindings {
            fresh.globals.set_untracked(&name, obj);
        }
        let out = fresh.run_cell("id(a[0]) == id(a)\n").expect("runs");
        assert_eq!(out.value_repr.as_deref(), Some("True"));
    }
}
