//! IPyFlow-style hybrid static/dynamic lineage tracking (§2.4, §7.6).
//!
//! Provenance trackers instrument the *program*: static AST analysis plus
//! live symbol resolution at runtime, executed for **every statement** —
//! including every loop iteration and every statement inside called
//! functions. This observer reproduces that cost model through the minipy
//! interpreter's [`ExecutionObserver`] hooks:
//!
//! * `on_stmt` performs the per-statement work (re-extracting the symbols
//!   the statement references — the "AST analysis with live resolution");
//! * `on_name_load`/`on_name_store` perform per-symbol live resolution
//!   against the heap.
//!
//! The accumulated wall time is the method's tracking overhead (Table 6 /
//! Fig 17). A resolution budget models the paper's observed failure mode
//! ("IPyFlow hangs indefinitely" on StoreSales cell 27): exceeding it marks
//! the tracker failed for the remainder of the notebook.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use kishu_kernel::{Heap, ObjId, ObjKind};
use kishu_minipy::ast::{Stmt, Target};
use kishu_minipy::observer::ExecutionObserver;

/// Live state of one tracked symbol: the reactive-execution bookkeeping a
/// real tracker maintains per symbol per event (version counter, the object
/// it currently resolves to, and the statement dependencies last observed).
#[derive(Debug, Clone, Default)]
struct SymbolState {
    version: u64,
    resolved: Option<ObjId>,
    deps: Vec<String>,
}

/// The IPyFlow-style tracking baseline.
#[derive(Debug)]
pub struct IpyflowTracker {
    /// Accumulated instrumentation wall time.
    pub overhead: Duration,
    /// Number of symbol resolutions performed.
    pub resolutions: u64,
    /// Statements instrumented.
    pub stmts_seen: u64,
    /// Whether the tracker exceeded its budget (the simulated hang).
    pub failed: bool,
    budget: Option<u64>,
    // Accumulator that keeps the resolution work observable (prevents the
    // optimizer from deleting it).
    fingerprint: u64,
    /// The live symbol table (per-symbol versions + dependency edges).
    symbols: HashMap<String, SymbolState>,
}

impl Default for IpyflowTracker {
    fn default() -> Self {
        Self::new(None)
    }
}

impl IpyflowTracker {
    /// New tracker. `budget` caps the number of symbol resolutions in one
    /// notebook before the tracker is considered hung (Table 6's FAIL).
    pub fn new(budget: Option<u64>) -> Self {
        IpyflowTracker {
            overhead: Duration::ZERO,
            resolutions: 0,
            stmts_seen: 0,
            failed: false,
            budget,
            fingerprint: 0,
            symbols: HashMap::new(),
        }
    }

    /// Opaque digest of all resolution work (used by tests and to keep the
    /// work live).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn resolve(&mut self, heap: &Heap, name: &str, obj: ObjId) {
        // Live symbol resolution: inspect the symbol's current object —
        // identity, type, and top-level children — and refresh its entry in
        // the symbol table (version bump, re-resolved target, dependency
        // edges). This per-event bookkeeping is the tracker's real cost:
        // it happens on every name event of every executed statement.
        let addr = heap.addr(obj);
        let kind = heap.kind(obj);
        let extent = match kind {
            ObjKind::List(v) | ObjKind::Tuple(v) | ObjKind::Set(v) => v.len() as u64,
            ObjKind::Dict(p) => p.len() as u64,
            ObjKind::NdArray(v) => v.len() as u64,
            ObjKind::Str(s) => s.len() as u64,
            ObjKind::Int(v) => *v as u64,
            ObjKind::External { epoch, .. } => *epoch,
            _ => 1,
        };
        // First-level child scan (sub-variable symbols like `ls[x]`).
        let mut child_digest = 0u64;
        for child in kind.children().iter().take(16) {
            child_digest = child_digest
                .rotate_left(5)
                .wrapping_add(heap.addr(*child));
        }
        let entry = self.symbols.entry(name.to_string()).or_default();
        entry.version += 1;
        entry.resolved = Some(obj);
        self.fingerprint = self
            .fingerprint
            .rotate_left(7)
            .wrapping_add(addr ^ extent.wrapping_mul(0x9E3779B97F4A7C15))
            .wrapping_add(child_digest)
            .wrapping_add(entry.version);
        self.resolutions += 1;
    }

    fn charge(&mut self, start: Instant) {
        self.overhead += start.elapsed();
        if let Some(budget) = self.budget {
            if self.resolutions > budget {
                self.failed = true;
            }
        }
    }
}

/// Collect the names an individual statement references (not descending
/// into nested blocks — those statements get their own `on_stmt` events).
fn stmt_names(stmt: &Stmt, out: &mut Vec<String>) {
    let target_names = |t: &Target, out: &mut Vec<String>| match t {
        Target::Name(n) => {
            if !out.contains(n) {
                out.push(n.clone());
            }
        }
        Target::Attr(e, _) => e.referenced_names(out),
        Target::Index(e, i) => {
            e.referenced_names(out);
            i.referenced_names(out);
        }
    };
    match stmt {
        Stmt::Expr(e) => e.referenced_names(out),
        Stmt::Assign { target, value } => {
            target_names(target, out);
            value.referenced_names(out);
        }
        Stmt::AugAssign { target, value, .. } => {
            target_names(target, out);
            value.referenced_names(out);
        }
        Stmt::Del(targets) => {
            for t in targets {
                target_names(t, out);
            }
        }
        Stmt::If { arms, .. } => {
            for (cond, _) in arms {
                cond.referenced_names(out);
            }
        }
        Stmt::While { cond, .. } => cond.referenced_names(out),
        Stmt::For { iter, .. } => iter.referenced_names(out),
        Stmt::Return(Some(e)) => e.referenced_names(out),
        Stmt::FuncDef { .. }
        | Stmt::Return(None)
        | Stmt::Global(_)
        | Stmt::Pass
        | Stmt::Break
        | Stmt::Continue => {}
    }
}

impl ExecutionObserver for IpyflowTracker {
    fn on_stmt(&mut self, _heap: &Heap, stmt: &Stmt) {
        let start = Instant::now();
        // Static analysis per executed statement: (re-)extract the symbols
        // it references. The hybrid tracker repeats this on every loop
        // iteration — the cost §7.6 measures.
        let mut names = Vec::new();
        stmt_names(stmt, &mut names);
        // Refresh dependency edges for every symbol this statement touches
        // (the reactive-execution graph maintenance real trackers pay for).
        for n in &names {
            self.fingerprint = self
                .fingerprint
                .rotate_left(3)
                .wrapping_add(crate::ipyflow::cheap_hash(n));
            let deps: Vec<String> = names.iter().filter(|m| *m != n).cloned().collect();
            let entry = self.symbols.entry(n.clone()).or_default();
            entry.deps = deps;
        }
        self.stmts_seen += 1;
        self.charge(start);
    }

    fn on_name_load(&mut self, heap: &Heap, name: &str, obj: Option<ObjId>) {
        let start = Instant::now();
        if let Some(obj) = obj {
            self.resolve(heap, name, obj);
        }
        self.charge(start);
    }

    fn on_name_store(&mut self, heap: &Heap, name: &str, obj: ObjId) {
        let start = Instant::now();
        self.resolve(heap, name, obj);
        self.charge(start);
    }
}

pub(crate) fn cheap_hash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_minipy::Interp;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn tracked_run(src: &str, budget: Option<u64>) -> (Interp, Rc<RefCell<IpyflowTracker>>) {
        let mut i = Interp::new();
        let tracker = Rc::new(RefCell::new(IpyflowTracker::new(budget)));
        i.add_observer(tracker.clone());
        let out = i.run_cell(src).expect("parses");
        assert!(out.error.is_none(), "{:?}", out.error);
        (i, tracker)
    }

    #[test]
    fn cost_scales_with_loop_iterations() {
        let (_, small) = tracked_run("s = 0\nfor k in range(10):\n    s += k\n", None);
        let (_, big) = tracked_run("s = 0\nfor k in range(10000):\n    s += k\n", None);
        let small = small.borrow();
        let big = big.borrow();
        assert!(big.stmts_seen > 100 * small.stmts_seen / 2);
        assert!(big.resolutions > small.resolutions * 50);
        // The accumulated overhead grows with the work.
        assert!(big.overhead >= small.overhead);
    }

    #[test]
    fn function_bodies_are_instrumented() {
        let (_, t) = tracked_run(
            "def f(n):\n    total = 0\n    for k in range(n):\n        total += k\n    return total\nx = f(500)\n",
            None,
        );
        assert!(t.borrow().stmts_seen > 500, "statements inside the call are seen");
    }

    #[test]
    fn budget_exhaustion_marks_failure() {
        let (_, t) = tracked_run("s = 0\nfor k in range(1000):\n    s += k\n", Some(100));
        assert!(t.borrow().failed, "simulated hang on a complex cell");
        let (_, t) = tracked_run("x = 1\n", Some(100));
        assert!(!t.borrow().failed);
    }

    #[test]
    fn straight_line_cells_are_cheap() {
        let (_, t) = tracked_run("a = 1\nb = a + 1\n", None);
        let t = t.borrow();
        assert_eq!(t.stmts_seen, 2);
        assert!(t.resolutions >= 3); // store a, load a, store b
    }

    #[test]
    fn fingerprint_depends_on_state() {
        let (_, t1) = tracked_run("x = [1, 2, 3]\ny = x\n", None);
        let (_, t2) = tracked_run("x = [1, 2, 3, 4]\ny = x\n", None);
        assert_ne!(t1.borrow().fingerprint(), t2.borrow().fingerprint());
    }
}
