//! DumpSession: whole-state application-level serialization (§7.1).
//!
//! The Dill `dump_session` strategy: after every cell, pickle the *entire*
//! namespace into one blob. Restore loads one blob into a fresh kernel —
//! always a complete, never an incremental, restore. Fails outright on
//! states containing unserializable classes (Fig 12 / Table 4).

use std::sync::Arc;
use std::time::Instant;

use kishu_kernel::ObjId;
use kishu_libsim::{LibReducer, Registry};
use kishu_minipy::Interp;
use kishu_pickle::{dumps, loads};
use kishu_storage::{BlobId, CheckpointStore};

use crate::{CkptStats, MethodError, RestoreStats};

/// The DumpSession baseline.
pub struct DumpSession {
    store: Box<dyn CheckpointStore>,
    registry: Arc<Registry>,
    reducer: LibReducer,
    versions: Vec<(BlobId, Vec<String>)>,
}

impl DumpSession {
    /// New dumper writing into `store`.
    pub fn new(store: Box<dyn CheckpointStore>, registry: Arc<Registry>) -> Self {
        DumpSession {
            store,
            reducer: LibReducer::new(registry.clone()),
            registry,
            versions: Vec::new(),
        }
    }

    /// Number of dumps taken.
    pub fn versions(&self) -> usize {
        self.versions.len()
    }

    /// Storage accounting.
    pub fn stats(&self) -> kishu_storage::StoreStats {
        self.store.stats()
    }

    /// Serialize the whole session state as one blob.
    pub fn checkpoint(&mut self, interp: &Interp) -> Result<CkptStats, MethodError> {
        let start = Instant::now();
        let names: Vec<String> = interp.globals.names();
        let roots: Vec<ObjId> = names
            .iter()
            .map(|n| interp.globals.peek(n).expect("name just listed"))
            .collect();
        let blob = dumps(&interp.heap, &roots, &self.reducer)
            .map_err(|e| MethodError::Unsupported(e.to_string()))?;
        let bytes = blob.len() as u64;
        let id = self
            .store
            .put(&blob)
            .map_err(|e| MethodError::Io(e.to_string()))?;
        self.versions.push((id, names));
        Ok(CkptStats {
            bytes,
            time: start.elapsed(),
        })
    }

    /// Load version `v` into a fresh kernel (complete, non-incremental).
    pub fn restore(&self, v: usize) -> Result<(Interp, RestoreStats), MethodError> {
        let start = Instant::now();
        let (blob_id, names) = self
            .versions
            .get(v)
            .ok_or(MethodError::UnknownVersion(v))?;
        let blob = self
            .store
            .get(*blob_id)
            .map_err(|e| MethodError::Io(e.to_string()))?;
        let bytes_read = blob.len() as u64;
        let mut interp = Interp::new();
        kishu_libsim::install(&mut interp, self.registry.clone());
        let roots = loads(&mut interp.heap, &blob, &self.reducer)
            .map_err(|e| MethodError::Unsupported(e.to_string()))?;
        for (name, obj) in names.iter().zip(roots) {
            interp.globals.set_untracked(name, obj);
        }
        Ok((
            interp,
            RestoreStats {
                bytes_read,
                time: start.elapsed(),
                killed_kernel: false,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_storage::MemoryStore;

    fn kernel() -> (Interp, Arc<Registry>) {
        let mut interp = Interp::new();
        let registry = Arc::new(Registry::standard());
        kishu_libsim::install(&mut interp, registry.clone());
        (interp, registry)
    }

    fn run(i: &mut Interp, src: &str) {
        let out = i.run_cell(src).expect("parses");
        assert!(out.error.is_none(), "{:?}", out.error);
    }

    fn eval(i: &mut Interp, expr: &str) -> String {
        let out = i.run_cell(&format!("{expr}\n")).expect("parses");
        out.value_repr.unwrap_or_default()
    }

    #[test]
    fn roundtrip_preserves_sharing() {
        let (mut i, reg) = kernel();
        let mut ds = DumpSession::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "x = [1, 2]\ny = x\n");
        ds.checkpoint(&i).expect("ckpt");
        run(&mut i, "x.append(3)\n");
        ds.checkpoint(&i).expect("ckpt");
        let (mut restored, _) = ds.restore(0).expect("restore");
        assert_eq!(eval(&mut restored, "len(x)"), "2");
        assert_eq!(eval(&mut restored, "id(x) == id(y)"), "True");
    }

    #[test]
    fn every_checkpoint_is_full_size() {
        // Non-incremental: a tiny change still re-dumps everything.
        let (mut i, reg) = kernel();
        let mut ds = DumpSession::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "big = read_csv('d', 5000, 4, 1)\nflag = 0\n");
        let c0 = ds.checkpoint(&i).expect("ckpt");
        run(&mut i, "flag = 1\n");
        let c1 = ds.checkpoint(&i).expect("ckpt");
        assert!(c1.bytes > c0.bytes * 9 / 10, "no delta exploitation");
    }

    #[test]
    fn unserializable_state_fails() {
        let (mut i, reg) = kernel();
        let mut ds = DumpSession::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "lazy = lib_obj('pl.LazyFrame', 32, 1)\n");
        assert!(matches!(
            ds.checkpoint(&i),
            Err(MethodError::Unsupported(_))
        ));
    }

    #[test]
    fn deserialize_failure_fails_restore() {
        let (mut i, reg) = kernel();
        let mut ds = DumpSession::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "fig = lib_obj('bokeh.figure', 32, 1)\n");
        ds.checkpoint(&i).expect("dump works");
        assert!(matches!(ds.restore(0), Err(MethodError::Unsupported(_))));
    }

    #[test]
    fn off_process_classes_are_fine_here() {
        // Unlike CRIU, reduction-based dumping handles Ray/Spark/GPU.
        let (mut i, reg) = kernel();
        let mut ds = DumpSession::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "t = lib_obj('torch.Tensor', 64, 1)\n");
        ds.checkpoint(&i).expect("reductions handle off-process data");
        let (restored, _) = ds.restore(0).expect("restore");
        assert!(restored.globals.contains("t"));
    }
}
