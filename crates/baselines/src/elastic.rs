//! ElasticNotebook: profiled store-vs-recompute session replication (§7.1).
//!
//! ElasticNotebook optimizes *migration* time: it profiles every variable's
//! serialized size and serializability, then decides per variable whether
//! to store its bytes or to re-run the cell that created it on restore.
//! Two properties the paper measures fall out of that design:
//!
//! * the per-cell **profiling pass is not incremental** — every variable is
//!   traversed and trial-serialized on every checkpoint, which is why EN's
//!   checkpoint time can exceed DumpSession's (§7.4) even when its
//!   checkpoint *sizes* are smaller (§7.3);
//! * **restore is complete, not incremental**: a fresh kernel loads the
//!   stored variables and replays the recompute-planned cells.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use kishu_kernel::ObjId;
use kishu_libsim::{LibReducer, Registry};
use kishu_minipy::Interp;
use kishu_pickle::{dumps, loads};
use kishu_storage::{BlobId, CheckpointStore};

use crate::{CkptStats, MethodError, RestoreStats};

/// Assumed storage write bandwidth for the store-vs-recompute decision
/// (bytes/second); roughly the paper's NFS write speed.
const WRITE_BYTES_PER_SEC: f64 = 350.0 * 1024.0 * 1024.0;

struct Version {
    blob: Option<BlobId>,
    stored_vars: Vec<String>,
    replay_cells: Vec<usize>,
}

/// Per-cell lineage record: which names the cell read and which it touched
/// in any way (reads can mutate through references, so the closure treats
/// every access as a potential write — EN's conservative direction).
struct CellLineage {
    gets: Vec<String>,
    touched: Vec<String>,
}

/// The ElasticNotebook baseline.
pub struct ElasticNotebook {
    store: Box<dyn CheckpointStore>,
    registry: Arc<Registry>,
    reducer: LibReducer,
    cells: Vec<String>,
    /// Which cell (index) last (re)bound each variable — the replay source
    /// for recompute-planned variables.
    creator: BTreeMap<String, usize>,
    /// Accumulated wall time of every cell that touched each variable —
    /// EN's estimate of what recomputing the variable would cost (the whole
    /// touching chain must be replayed, not just the creator cell).
    touch_time: BTreeMap<String, Duration>,
    lineage: Vec<CellLineage>,
    cell_times: Vec<Duration>,
    versions: Vec<Version>,
}

impl ElasticNotebook {
    /// New replicator writing into `store`.
    pub fn new(store: Box<dyn CheckpointStore>, registry: Arc<Registry>) -> Self {
        ElasticNotebook {
            store,
            reducer: LibReducer::new(registry.clone()),
            registry,
            cells: Vec::new(),
            creator: BTreeMap::new(),
            touch_time: BTreeMap::new(),
            lineage: Vec::new(),
            cell_times: Vec::new(),
            versions: Vec::new(),
        }
    }

    /// Compute the replay plan for `recompute_vars` at `version`: the
    /// transitive closure of cells that touched a needed variable, plus the
    /// unstored variables those cells read. Stored variables are loaded
    /// before replay, so their reads are satisfied from the blob.
    fn replay_closure(
        &self,
        version: usize,
        recompute_vars: &[String],
        stored: &std::collections::BTreeSet<String>,
    ) -> Vec<usize> {
        let mut needed_vars: std::collections::BTreeSet<String> =
            recompute_vars.iter().cloned().collect();
        let mut cells: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        loop {
            let before = (needed_vars.len(), cells.len());
            for (idx, lin) in self.lineage.iter().enumerate().take(version + 1) {
                if lin.touched.iter().any(|n| needed_vars.contains(n)) {
                    cells.insert(idx);
                    for g in &lin.gets {
                        if !stored.contains(g) {
                            needed_vars.insert(g.clone());
                        }
                    }
                }
            }
            if (needed_vars.len(), cells.len()) == before {
                break;
            }
        }
        cells.into_iter().collect()
    }

    /// Number of checkpoints taken.
    pub fn versions(&self) -> usize {
        self.versions.len()
    }

    /// Storage accounting.
    pub fn stats(&self) -> kishu_storage::StoreStats {
        self.store.stats()
    }

    /// Checkpoint after a cell execution. EN needs the cell's source, wall
    /// time, and the cell's access record (reads + writes) to keep its
    /// lineage map current.
    pub fn checkpoint(
        &mut self,
        interp: &Interp,
        cell_src: &str,
        cell_time: Duration,
        access: &kishu_kernel::AccessRecord,
    ) -> Result<CkptStats, MethodError> {
        let start = Instant::now();
        let cell_idx = self.cells.len();
        self.cells.push(cell_src.to_string());
        self.cell_times.push(cell_time);
        self.lineage.push(CellLineage {
            gets: access.gets.iter().cloned().collect(),
            touched: access.accessed().into_iter().collect(),
        });
        for n in &access.sets {
            self.creator.insert(n.clone(), cell_idx);
        }
        for n in access.accessed() {
            *self.touch_time.entry(n).or_default() += cell_time;
        }
        self.creator.retain(|n, _| interp.globals.contains(n));
        self.touch_time.retain(|n, _| interp.globals.contains(n));

        // Profiling pass: deep-size + trial serialization of EVERY variable
        // (the non-incremental cost §7.4 calls out).
        let mut store_vars: Vec<String> = Vec::new();
        let mut recompute_vars: Vec<String> = Vec::new();
        for name in interp.globals.names() {
            let root = interp.globals.peek(&name).expect("name listed");
            let profile = dumps(&interp.heap, &[root], &self.reducer);
            match profile {
                Ok(bytes) => {
                    let store_cost = bytes.len() as f64 / WRITE_BYTES_PER_SEC;
                    let recompute_cost = if self.creator.contains_key(&name) {
                        self.touch_time
                            .get(&name)
                            .map(|d| d.as_secs_f64())
                            .unwrap_or(f64::INFINITY)
                    } else {
                        f64::INFINITY
                    };
                    if store_cost <= recompute_cost {
                        store_vars.push(name);
                    } else {
                        recompute_vars.push(name);
                    }
                }
                Err(_) => {
                    // Unserializable: must be recomputed on restore.
                    if self.creator.contains_key(&name) {
                        recompute_vars.push(name);
                    } else {
                        return Err(MethodError::Unsupported(format!(
                            "variable `{name}` is unserializable and has no known creator cell"
                        )));
                    }
                }
            }
        }
        let stored_set: std::collections::BTreeSet<String> = store_vars.iter().cloned().collect();
        let replay_cells = self.replay_closure(cell_idx, &recompute_vars, &stored_set);

        // Serialize the chosen variables into one blob.
        let roots: Vec<ObjId> = store_vars
            .iter()
            .map(|n| interp.globals.peek(n).expect("name listed"))
            .collect();
        let (blob_id, bytes) = if roots.is_empty() {
            (None, 0u64)
        } else {
            let blob = dumps(&interp.heap, &roots, &self.reducer)
                .map_err(|e| MethodError::Unsupported(e.to_string()))?;
            let len = blob.len() as u64;
            let id = self
                .store
                .put(&blob)
                .map_err(|e| MethodError::Io(e.to_string()))?;
            (Some(id), len)
        };
        self.versions.push(Version {
            blob: blob_id,
            stored_vars: store_vars,
            replay_cells,
        });
        Ok(CkptStats {
            bytes,
            time: start.elapsed(),
        })
    }

    /// Restore version `v` into a fresh kernel: load the stored variables,
    /// then replay the recompute-planned cells in order.
    pub fn restore(&self, v: usize) -> Result<(Interp, RestoreStats), MethodError> {
        let start = Instant::now();
        let version = self.versions.get(v).ok_or(MethodError::UnknownVersion(v))?;
        let mut interp = Interp::new();
        kishu_libsim::install(&mut interp, self.registry.clone());
        let mut bytes_read = 0u64;
        if let Some(blob_id) = version.blob {
            let blob = self
                .store
                .get(blob_id)
                .map_err(|e| MethodError::Io(e.to_string()))?;
            bytes_read = blob.len() as u64;
            let roots = loads(&mut interp.heap, &blob, &self.reducer)
                .map_err(|e| MethodError::Unsupported(e.to_string()))?;
            for (name, obj) in version.stored_vars.iter().zip(roots) {
                interp.globals.set_untracked(name, obj);
            }
        }
        for cell in &version.replay_cells {
            let outcome = interp
                .run_cell(&self.cells[*cell])
                .map_err(|e| MethodError::Io(e.to_string()))?;
            if let Some(e) = outcome.error {
                return Err(MethodError::Io(format!("replay failed: {e}")));
            }
        }
        // Replayed cells may have mutated loaded variables to intermediate
        // states; re-load the blob so stored variables end at their
        // checkpointed values.
        if let Some(blob_id) = version.blob {
            if !version.replay_cells.is_empty() {
                let blob = self
                    .store
                    .get(blob_id)
                    .map_err(|e| MethodError::Io(e.to_string()))?;
                bytes_read += blob.len() as u64;
                let roots = loads(&mut interp.heap, &blob, &self.reducer)
                    .map_err(|e| MethodError::Unsupported(e.to_string()))?;
                for (name, obj) in version.stored_vars.iter().zip(roots) {
                    interp.globals.set_untracked(name, obj);
                }
            }
        }
        Ok((
            interp,
            RestoreStats {
                bytes_read,
                time: start.elapsed(),
                killed_kernel: false,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_storage::MemoryStore;

    fn kernel() -> (Interp, Arc<Registry>) {
        let mut interp = Interp::new();
        let registry = Arc::new(Registry::standard());
        kishu_libsim::install(&mut interp, registry.clone());
        (interp, registry)
    }

    fn step(i: &mut Interp, en: &mut ElasticNotebook, src: &str) -> CkptStats {
        let out = i.run_cell(src).expect("parses");
        assert!(out.error.is_none(), "{:?}", out.error);
        en.checkpoint(i, src, out.wall_time, &out.access).expect("ckpt")
    }

    fn eval(i: &mut Interp, expr: &str) -> String {
        let out = i.run_cell(&format!("{expr}\n")).expect("parses");
        out.value_repr.unwrap_or_default()
    }

    #[test]
    fn stores_and_restores_plain_state() {
        let (mut i, reg) = kernel();
        let mut en = ElasticNotebook::new(Box::new(MemoryStore::new()), reg);
        step(&mut i, &mut en, "x = [1, 2, 3]\n");
        step(&mut i, &mut en, "y = sum(x)\n");
        let (mut restored, _) = en.restore(1).expect("restore");
        assert_eq!(eval(&mut restored, "y"), "6");
        assert_eq!(eval(&mut restored, "len(x)"), "3");
    }

    #[test]
    fn unserializable_variables_are_replayed() {
        let (mut i, reg) = kernel();
        let mut en = ElasticNotebook::new(Box::new(MemoryStore::new()), reg);
        step(&mut i, &mut en, "lazy = lib_obj('pl.LazyFrame', 32, 1)\nplain = 7\n");
        let (mut restored, _) = en.restore(0).expect("restore via replay");
        assert_eq!(eval(&mut restored, "type(lazy)"), "'external'");
        assert_eq!(eval(&mut restored, "plain"), "7");
    }

    #[test]
    fn big_cheap_data_is_recomputed_not_stored() {
        let (mut i, reg) = kernel();
        let mut en = ElasticNotebook::new(Box::new(MemoryStore::new()), reg);
        // ~8 MB created nearly instantly: storing would cost more time than
        // replaying the cell, so EN plans a replay.
        let c = step(&mut i, &mut en, "big = zeros(1000000)\n");
        assert!(
            c.bytes < 1_000_000,
            "cheap-to-recompute data should not be stored ({} bytes)",
            c.bytes
        );
        let (mut restored, _) = en.restore(0).expect("restore");
        assert_eq!(eval(&mut restored, "big.size"), "1000000");
    }

    #[test]
    fn restore_is_complete_not_incremental() {
        let (mut i, reg) = kernel();
        let mut en = ElasticNotebook::new(Box::new(MemoryStore::new()), reg);
        step(&mut i, &mut en, "a = [1]\n");
        step(&mut i, &mut en, "b = [2]\n");
        let (restored, stats) = en.restore(1).expect("restore");
        // Everything was loaded, not just the delta since version 0.
        assert!(stats.bytes_read > 0);
        assert!(restored.globals.contains("a") && restored.globals.contains("b"));
    }

    #[test]
    fn mutation_chains_are_replayed_not_truncated() {
        // A model is constructed cheaply, then trained by later cells that
        // only *mutate* it. If EN plans a recompute, the whole touching
        // chain must replay — restoring just the constructor would yield an
        // untrained model.
        let (mut i, reg) = kernel();
        let mut en = ElasticNotebook::new(Box::new(MemoryStore::new()), reg);
        step(&mut i, &mut en, "m = lib_obj('sk.KMeans', 2048, 7)\n");
        step(&mut i, &mut en, "m.fit(1)\n");
        step(&mut i, &mut en, "m.fit(2)\n");
        step(&mut i, &mut en, "final_score = m.score()\n");
        let want = eval(&mut i, "final_score");
        let (mut restored, _) = en.restore(3).expect("restore");
        assert_eq!(eval(&mut restored, "m.score()"), want, "trained state restored");
        assert_eq!(eval(&mut restored, "final_score"), want);
    }

    #[test]
    fn replayed_cells_do_not_corrupt_stored_variables() {
        // A cell both mutates a recompute-planned object and appends to a
        // stored list; after replay the stored list must hold its
        // checkpointed value, not a doubled one.
        let (mut i, reg) = kernel();
        let mut en = ElasticNotebook::new(Box::new(MemoryStore::new()), reg);
        step(&mut i, &mut en, "log = []\nm = lib_obj('sk.KMeans', 2048, 7)\n");
        step(&mut i, &mut en, "m.fit(1)\nlog.append(m.score())\n");
        step(&mut i, &mut en, "m.fit(2)\nlog.append(m.score())\n");
        let want_len = eval(&mut i, "len(log)");
        let (mut restored, _) = en.restore(2).expect("restore");
        assert_eq!(eval(&mut restored, "len(log)"), want_len);
    }

    #[test]
    fn unknown_version_is_an_error() {
        let (_, reg) = kernel();
        let en = ElasticNotebook::new(Box::new(MemoryStore::new()), reg);
        assert!(matches!(en.restore(3), Err(MethodError::UnknownVersion(3))));
    }
}
