//! Kishu+Det-replay (§7.1): operation-replay-optimized Kishu.
//!
//! Cells *manually annotated* deterministic store no checkpoint bytes —
//! only code and dependencies — and are replayed on checkout via Kishu's
//! own fallback-recomputation machinery. This trades checkpoint size (up to
//! 3.95× smaller than Kishu in §7.3) for potentially unacceptable checkout
//! times (replaying a whole model-fitting sequence, §7.5.2); the paper
//! leaves the cost-based optimizer to future work, and so does this
//! baseline.

use kishu::session::{CellReport, CheckoutReport, KishuConfig, KishuSession};
use kishu::{KishuError, NodeId};
use kishu_minipy::RunError;
use kishu_storage::{CheckpointStore, StoreStats};

/// The Kishu+Det-replay baseline: a Kishu session whose deterministic cells
/// skip data storage.
pub struct DetReplay {
    session: KishuSession,
}

impl DetReplay {
    /// New session writing (only nondeterministic cells') checkpoints to
    /// `store`.
    pub fn new(store: Box<dyn CheckpointStore>, config: KishuConfig) -> Self {
        DetReplay {
            session: KishuSession::new(store, config),
        }
    }

    /// In-memory variant.
    pub fn in_memory(config: KishuConfig) -> Self {
        DetReplay {
            session: KishuSession::in_memory(config),
        }
    }

    /// Run a cell with its (manual) determinism annotation. Deterministic
    /// cells are checkpointed metadata-only.
    pub fn run_cell(&mut self, src: &str, deterministic: bool) -> Result<CellReport, RunError> {
        self.session.run_cell_with(src, !deterministic)
    }

    /// Checkout: Kishu's incremental checkout, with deterministic cells
    /// replayed as needed.
    pub fn checkout(&mut self, target: NodeId) -> Result<CheckoutReport, KishuError> {
        self.session.checkout(target)
    }

    /// Current head.
    pub fn head(&self) -> NodeId {
        self.session.head()
    }

    /// Storage accounting.
    pub fn store_stats(&self) -> StoreStats {
        self.session.store_stats()
    }

    /// Access the wrapped session (metrics, namespace, graph).
    pub fn session(&mut self) -> &mut KishuSession {
        &mut self.session
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(s: &mut DetReplay, expr: &str) -> String {
        let r = s.run_cell(&format!("{expr}\n"), true).expect("parses");
        assert!(r.outcome.error.is_none(), "{:?}", r.outcome.error);
        r.outcome.value_repr.unwrap_or_default()
    }

    #[test]
    fn deterministic_cells_store_nothing() {
        let mut s = DetReplay::in_memory(KishuConfig::default());
        s.run_cell("data = arange(10000)\n", true).expect("runs");
        assert_eq!(s.store_stats().payload_bytes, 0, "annotated cell stored no bytes");
        // A nondeterministic cell stores its delta normally.
        s.run_cell("noise = randn(100)\n", false).expect("runs");
        assert!(s.store_stats().payload_bytes > 0);
    }

    #[test]
    fn checkout_replays_deterministic_cells() {
        let mut s = DetReplay::in_memory(KishuConfig::default());
        s.run_cell("data = arange(100)\n", true).expect("runs");
        s.run_cell("total = data.sum()\n", true).expect("runs");
        let target = s.head();
        s.run_cell("del data\ndel total\n", true).expect("runs");
        let report = s.checkout(target).expect("checkout via replay");
        assert!(!report.recomputed.is_empty(), "replay happened");
        assert_eq!(eval(&mut s, "total"), "4950.0");
        assert_eq!(eval(&mut s, "data.size"), "100");
    }

    #[test]
    fn nondeterministic_cells_restore_from_bytes() {
        let mut s = DetReplay::in_memory(KishuConfig::default());
        s.run_cell("noise = randn(16)\n", false).expect("runs");
        let fingerprint = eval(&mut s, "noise.sum()");
        let target = s.head();
        s.run_cell("noise.fill(0.0)\n", false).expect("runs");
        s.checkout(target).expect("checkout");
        // Loaded from bytes, NOT re-drawn: the value is exact.
        assert_eq!(eval(&mut s, "noise.sum()"), fingerprint);
    }

    #[test]
    fn misannotated_nondeterminism_is_the_documented_limitation() {
        // §5.3 Remark: replaying a nondeterministic cell produces a
        // different value. Annotating a randn cell "deterministic" loses
        // exactness.
        let mut s = DetReplay::in_memory(KishuConfig::default());
        s.run_cell("noise = randn(16)\n", true).expect("runs");
        let fingerprint = eval(&mut s, "noise.sum()");
        let target = s.head();
        s.run_cell("del noise\n", true).expect("runs");
        s.checkout(target).expect("checkout replays");
        assert_ne!(eval(&mut s, "noise.sum()"), fingerprint);
    }
}
