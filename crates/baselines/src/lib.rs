//! # kishu-baselines — every comparator of the paper's evaluation (§7.1)
//!
//! All methods checkpoint/restore the *same* simulated kernel state through
//! the *same* storage interface, so sizes and times compare apples to
//! apples. The roster:
//!
//! | Method | Checkpoint | Restore |
//! |---|---|---|
//! | [`criu::CriuFull`] | full page dump of the process image | read everything, kill + rebuild the kernel |
//! | [`criu::CriuIncremental`] | dirty pages only | read the **whole chain**, piece the image together, kill + rebuild |
//! | [`dump_session::DumpSession`] | whole session state as one pickle blob | read one blob into a fresh kernel |
//! | [`elastic::ElasticNotebook`] | profiled store-vs-recompute split per variable | load stored vars, re-run cells for the rest |
//! | [`det_replay::DetReplay`] | Kishu, but deterministic cells store no bytes | Kishu checkout + cell replay |
//! | [`ipyflow::IpyflowTracker`] | (tracking-only baseline for Table 6 / Fig 17) | — |
//!
//! Kishu itself and AblatedKishu (check-all) live in the `kishu` crate
//! ([`kishu::KishuSession`] with [`kishu::KishuConfig::check_all`]).
//!
//! The CRIU pair fails on states containing off-process classes
//! (Table 4); DumpSession fails on unserializable classes — both failure
//! modes are enforced here and measured by the Fig 12 experiment.

pub mod criu;
pub mod det_replay;
pub mod dump_session;
pub mod elastic;
pub mod ipyflow;
pub mod memimage;

use std::time::Duration;

/// What one checkpoint cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct CkptStats {
    /// Bytes written for this checkpoint.
    pub bytes: u64,
    /// Wall time spent creating and writing it.
    pub time: Duration,
}

/// What one restore cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct RestoreStats {
    /// Bytes read from storage.
    pub bytes_read: u64,
    /// Wall time, end to end.
    pub time: Duration,
    /// Whether the method had to kill and rebuild the kernel process
    /// (CRIU's non-seamless restore, §2.3).
    pub killed_kernel: bool,
}

/// Why a method could not checkpoint or restore a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MethodError {
    /// The state contains data the mechanism fundamentally cannot handle
    /// (off-process objects for CRIU, unserializable classes for
    /// DumpSession). Carries the offending class/type name.
    Unsupported(String),
    /// Storage or decoding failure.
    Io(String),
    /// The requested version does not exist.
    UnknownVersion(usize),
}

impl std::fmt::Display for MethodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MethodError::Unsupported(what) => write!(f, "unsupported state content: {what}"),
            MethodError::Io(e) => write!(f, "i/o failure: {e}"),
            MethodError::UnknownVersion(v) => write!(f, "unknown version {v}"),
        }
    }
}

impl std::error::Error for MethodError {}
