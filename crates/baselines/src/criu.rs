//! CRIU and CRIU-Incremental: OS-level memory snapshotting (§2.3, §7.1).
//!
//! * `CriuFull` dumps every live page of the simulated process on each
//!   checkpoint; restore reads one image and rebuilds the kernel process.
//! * `CriuIncremental` dumps only pages dirtied since the previous
//!   checkpoint; restore must read the **entire chain** (base + overlays)
//!   and piece the process image together — the reason it is the slowest
//!   restorer in Fig 15 despite cheap checkpoints.
//!
//! Both account checkpoint size at *page* granularity (images are padded to
//! whole pages), reproducing the fragmentation blow-up of Fig 4: touching
//! one interleaved list drags every co-located object into the delta. Both
//! fail when the state holds off-process objects (Spark/Ray/GPU — Table 4),
//! and both must kill and replace the kernel process to restore.

use std::sync::Arc;
use std::time::Instant;

use kishu_kernel::{ObjId, ObjKind, PAGE_SIZE};
use kishu_libsim::Registry;
use kishu_minipy::Interp;
use kishu_storage::{BlobId, CheckpointStore};

use crate::memimage::{decode_chain, encode_image};
use crate::{CkptStats, MethodError, RestoreStats};

/// Reject states CRIU cannot dump: any live object of an off-process class.
fn check_supported(interp: &Interp, registry: &Registry) -> Result<(), MethodError> {
    for id in interp.heap.live_objects() {
        if let ObjKind::External { class, .. } = interp.heap.kind(id) {
            if let Some(spec) = registry.get(*class) {
                if spec.behavior.off_process {
                    return Err(MethodError::Unsupported(spec.name.to_string()));
                }
            }
        }
    }
    Ok(())
}

fn bindings_of(interp: &Interp) -> Vec<(String, ObjId)> {
    interp
        .globals
        .bindings()
        .map(|(n, o)| (n.to_string(), o))
        .collect()
}

/// Build a fresh kernel process from a decoded image chain.
fn revive(
    registry: &Arc<Registry>,
    blobs: &[Vec<u8>],
) -> Result<Interp, MethodError> {
    // An OS-level restore cannot reuse the live kernel: the process is
    // killed and a new one started before the image is mapped back in
    // (§2.3). Charge the restart.
    kishu_kernel::simcost::charge(kishu_kernel::simcost::KERNEL_RESTART);
    let mut interp = Interp::new();
    kishu_libsim::install(&mut interp, registry.clone());
    let bindings = decode_chain(blobs, &mut interp.heap)?;
    for (name, obj) in bindings {
        interp.globals.set_untracked(&name, obj);
    }
    Ok(interp)
}

/// Full OS-level snapshots.
pub struct CriuFull {
    store: Box<dyn CheckpointStore>,
    registry: Arc<Registry>,
    versions: Vec<BlobId>,
}

impl CriuFull {
    /// New snapshotter writing into `store`.
    pub fn new(store: Box<dyn CheckpointStore>, registry: Arc<Registry>) -> Self {
        CriuFull {
            store,
            registry,
            versions: Vec::new(),
        }
    }

    /// Number of snapshots taken.
    pub fn versions(&self) -> usize {
        self.versions.len()
    }

    /// Storage accounting.
    pub fn stats(&self) -> kishu_storage::StoreStats {
        self.store.stats()
    }

    /// Snapshot the whole process image.
    pub fn checkpoint(&mut self, interp: &mut Interp) -> Result<CkptStats, MethodError> {
        let start = Instant::now();
        check_supported(interp, &self.registry)?;
        let bindings = bindings_of(interp);
        let objs: Vec<ObjId> = interp.heap.live_objects().collect();
        let mut image = encode_image(&interp.heap, &bindings, &objs, true);
        let page_bytes = interp.heap.live_pages().len() as u64 * PAGE_SIZE;
        if (image.len() as u64) < page_bytes {
            image.resize(page_bytes as usize, 0);
        }
        let id = self
            .store
            .put(&image)
            .map_err(|e| MethodError::Io(e.to_string()))?;
        self.versions.push(id);
        interp.heap.clear_dirty_pages();
        Ok(CkptStats {
            bytes: image.len() as u64,
            time: start.elapsed(),
        })
    }

    /// Restore version `v`: read the image, kill the kernel, rebuild.
    pub fn restore(&self, v: usize) -> Result<(Interp, RestoreStats), MethodError> {
        let start = Instant::now();
        let blob_id = *self
            .versions
            .get(v)
            .ok_or(MethodError::UnknownVersion(v))?;
        let blob = self
            .store
            .get(blob_id)
            .map_err(|e| MethodError::Io(e.to_string()))?;
        let bytes_read = blob.len() as u64;
        let interp = revive(&self.registry, &[blob])?;
        Ok((
            interp,
            RestoreStats {
                bytes_read,
                time: start.elapsed(),
                killed_kernel: true,
            },
        ))
    }
}

/// Incremental (dirty-page) OS-level snapshots.
pub struct CriuIncremental {
    store: Box<dyn CheckpointStore>,
    registry: Arc<Registry>,
    versions: Vec<BlobId>,
}

impl CriuIncremental {
    /// New snapshotter writing into `store`.
    pub fn new(store: Box<dyn CheckpointStore>, registry: Arc<Registry>) -> Self {
        CriuIncremental {
            store,
            registry,
            versions: Vec::new(),
        }
    }

    /// Number of snapshots taken.
    pub fn versions(&self) -> usize {
        self.versions.len()
    }

    /// Storage accounting.
    pub fn stats(&self) -> kishu_storage::StoreStats {
        self.store.stats()
    }

    /// Snapshot: full image the first time, then only objects on pages
    /// dirtied since the previous snapshot.
    pub fn checkpoint(&mut self, interp: &mut Interp) -> Result<CkptStats, MethodError> {
        let start = Instant::now();
        check_supported(interp, &self.registry)?;
        let bindings = bindings_of(interp);
        let (objs, page_count, full): (Vec<ObjId>, usize, bool) = if self.versions.is_empty() {
            let pages = interp.heap.live_pages();
            (interp.heap.live_objects().collect(), pages.len(), true)
        } else {
            let dirty = interp.heap.dirty_pages();
            (interp.heap.objects_on_pages(&dirty), dirty.len(), false)
        };
        let mut image = encode_image(&interp.heap, &bindings, &objs, full);
        let page_bytes = page_count as u64 * PAGE_SIZE;
        if (image.len() as u64) < page_bytes {
            image.resize(page_bytes as usize, 0);
        }
        let id = self
            .store
            .put(&image)
            .map_err(|e| MethodError::Io(e.to_string()))?;
        self.versions.push(id);
        interp.heap.clear_dirty_pages();
        Ok(CkptStats {
            bytes: image.len() as u64,
            time: start.elapsed(),
        })
    }

    /// Restore version `v`: read and merge the full chain `0..=v`.
    pub fn restore(&self, v: usize) -> Result<(Interp, RestoreStats), MethodError> {
        let start = Instant::now();
        if v >= self.versions.len() {
            return Err(MethodError::UnknownVersion(v));
        }
        let mut blobs = Vec::with_capacity(v + 1);
        let mut bytes_read = 0u64;
        for id in &self.versions[..=v] {
            let blob = self
                .store
                .get(*id)
                .map_err(|e| MethodError::Io(e.to_string()))?;
            bytes_read += blob.len() as u64;
            blobs.push(blob);
        }
        let interp = revive(&self.registry, &blobs)?;
        Ok((
            interp,
            RestoreStats {
                bytes_read,
                time: start.elapsed(),
                killed_kernel: true,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_storage::MemoryStore;

    fn kernel() -> (Interp, Arc<Registry>) {
        let mut interp = Interp::new();
        let registry = Arc::new(Registry::standard());
        kishu_libsim::install(&mut interp, registry.clone());
        (interp, registry)
    }

    fn run(i: &mut Interp, src: &str) {
        let out = i.run_cell(src).expect("parses");
        assert!(out.error.is_none(), "{:?}", out.error);
    }

    fn eval(i: &mut Interp, expr: &str) -> String {
        let out = i.run_cell(&format!("{expr}\n")).expect("parses");
        assert!(out.error.is_none(), "{:?}", out.error);
        out.value_repr.unwrap_or_default()
    }

    #[test]
    fn full_snapshot_roundtrip() {
        let (mut i, reg) = kernel();
        let mut criu = CriuFull::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "df = read_csv('d', 100, 3, 1)\nx = [1, 2]\n");
        criu.checkpoint(&mut i).expect("ckpt 0");
        run(&mut i, "x.append(3)\n");
        criu.checkpoint(&mut i).expect("ckpt 1");
        let (mut restored, stats) = criu.restore(0).expect("restore");
        assert!(stats.killed_kernel);
        assert_eq!(eval(&mut restored, "len(x)"), "2");
        let (mut restored, _) = criu.restore(1).expect("restore");
        assert_eq!(eval(&mut restored, "len(x)"), "3");
    }

    #[test]
    fn incremental_chain_roundtrip() {
        let (mut i, reg) = kernel();
        let mut criu = CriuIncremental::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "base = read_csv('d', 5000, 4, 1)\nls = [1]\n");
        let c0 = criu.checkpoint(&mut i).expect("base");
        run(&mut i, "ls.append(2)\n");
        let c1 = criu.checkpoint(&mut i).expect("overlay");
        assert!(
            c1.bytes < c0.bytes / 2,
            "overlay ({}) must be much smaller than base ({})",
            c1.bytes,
            c0.bytes
        );
        let (mut restored, stats) = criu.restore(1).expect("restore");
        assert_eq!(
            stats.bytes_read,
            c0.bytes + c1.bytes,
            "restore reads the whole chain"
        );
        assert_eq!(eval(&mut restored, "len(ls)"), "2");
        assert_eq!(eval(&mut restored, "len(base.columns)"), "4");
    }

    #[test]
    fn incremental_is_coarser_than_the_logical_delta() {
        // The Fig 4 effect: two lists built by interleaved appends have
        // their *elements* fragmented across shared pages. Mutating every
        // element of `sad` dirties pages that also hold `happy`'s elements,
        // so the page-granular snapshot drags untouched data along.
        let (mut i, reg) = kernel();
        let mut criu = CriuIncremental::new(Box::new(MemoryStore::new()), reg);
        run(
            &mut i,
            "sad = []\nhappy = []\nfor k in range(300):\n    sad.append([k])\n    happy.append([k])\n",
        );
        criu.checkpoint(&mut i).expect("base");
        run(&mut i, "for e in sad:\n    e.append(0)\n");
        // Inspect the dirty-page object set before the overlay clears it.
        let dirty = i.heap.dirty_pages();
        let dragged = i.heap.objects_on_pages(&dirty);
        let happy = i.globals.peek("happy").expect("bound");
        let happy_elems: Vec<ObjId> = i.heap.children(happy);
        let dragged_happy = happy_elems.iter().filter(|e| dragged.contains(e)).count();
        assert!(
            dragged_happy * 2 > happy_elems.len(),
            "page granularity dragged only {dragged_happy}/{} untouched happy elements",
            happy_elems.len()
        );
        // And the overlay is accordingly larger than the one-co-variable
        // logical delta Kishu would write.
        let c1 = criu.checkpoint(&mut i).expect("overlay");
        let sad = i.globals.peek("sad").expect("bound");
        let sad_bytes = i.heap.deep_size([sad]);
        assert!(
            c1.bytes as f64 > 1.2 * sad_bytes as f64,
            "page-granular delta {} should exceed the one-list delta {}",
            c1.bytes,
            sad_bytes
        );
    }

    #[test]
    fn off_process_state_is_unsupported() {
        let (mut i, reg) = kernel();
        run(&mut i, "t = lib_obj('torch.Tensor', 128, 1)\n");
        let mut full = CriuFull::new(Box::new(MemoryStore::new()), reg.clone());
        assert!(matches!(
            full.checkpoint(&mut i),
            Err(MethodError::Unsupported(name)) if name == "torch.Tensor"
        ));
        let mut inc = CriuIncremental::new(Box::new(MemoryStore::new()), reg);
        assert!(matches!(
            inc.checkpoint(&mut i),
            Err(MethodError::Unsupported(_))
        ));
    }

    #[test]
    fn generators_are_fine_for_criu() {
        // The one thing OS-level dumps handle that pickling cannot.
        let (mut i, reg) = kernel();
        let mut criu = CriuFull::new(Box::new(MemoryStore::new()), reg);
        run(&mut i, "g = make_generator()\n");
        criu.checkpoint(&mut i).expect("generators dump fine");
        let (restored, _) = criu.restore(0).expect("restore");
        assert!(restored.globals.contains("g"));
    }

    #[test]
    fn unknown_version_is_an_error() {
        let (_, reg) = kernel();
        let criu = CriuFull::new(Box::new(MemoryStore::new()), reg);
        assert!(matches!(criu.restore(0), Err(MethodError::UnknownVersion(0))));
    }
}
