//! Durable append-only log store.
//!
//! Record layout (little-endian):
//!
//! ```text
//! +--------+----------+-----------+-------------+
//! | 0x4B   | len: u32 | crc32: u32| payload     |
//! +--------+----------+-----------+-------------+
//! ```
//!
//! The single-byte record marker plus the CRC over the payload makes torn
//! tail writes detectable: on open, the log is scanned, every intact record
//! is indexed, and the first damaged/truncated record ends recovery — the
//! file is truncated back to the last intact boundary, exactly the recovery
//! contract of a write-ahead log.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use std::sync::Mutex;

use crate::crc32::crc32;
use crate::{BlobId, CheckpointStore, StoreStats};

const RECORD_MARKER: u8 = 0x4B; // 'K'
const HEADER_LEN: u64 = 1 + 4 + 4;

/// Append `payload` to `out` framed exactly as [`FileStore::put`] writes it
/// (marker, length, CRC, payload), so writers that build whole log images
/// out-of-place — GC compaction rewriting a generation — produce files
/// [`FileStore::open`] recovers with the same torn-tail semantics.
pub(crate) fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.push(RECORD_MARKER);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Append-only log-file blob store with CRC-checked records and recovery.
pub struct FileStore {
    file: Mutex<File>,
    path: PathBuf,
    index: Vec<(u64, u32)>, // (payload offset, payload len)
    end_offset: u64,
    payload_bytes: u64,
    sync_on_put: bool,
    trace: kishu_trace::Trace,
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("path", &self.path)
            .field("blobs", &self.index.len())
            .finish()
    }
}

impl FileStore {
    /// Create a new, empty log at `path` (truncating any existing file).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(FileStore {
            file: Mutex::new(file),
            path: path.as_ref().to_path_buf(),
            index: Vec::new(),
            end_offset: 0,
            payload_bytes: 0,
            sync_on_put: false,
            trace: kishu_trace::Trace::disabled(),
        })
    }

    /// Open an existing log, recovering its index by scanning. A torn or
    /// corrupt tail is truncated away; everything before it stays readable.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path.as_ref())?;
        let file_len = file.metadata()?.len();
        let mut index = Vec::new();
        let mut payload_bytes = 0u64;
        let mut offset = 0u64;
        let mut buf = Vec::new();
        while offset + HEADER_LEN <= file_len {
            file.seek(SeekFrom::Start(offset))?;
            let mut header = [0u8; HEADER_LEN as usize];
            file.read_exact(&mut header)?;
            if header[0] != RECORD_MARKER {
                break; // garbage: end recovery here
            }
            let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
            let crc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
            let payload_off = offset + HEADER_LEN;
            if payload_off + len as u64 > file_len {
                break; // torn write
            }
            buf.resize(len as usize, 0);
            file.read_exact(&mut buf)?;
            if crc32(&buf) != crc {
                break; // corrupted record
            }
            index.push((payload_off, len));
            payload_bytes += len as u64;
            offset = payload_off + len as u64;
        }
        // Truncate away anything after the last intact record so appends
        // never interleave with garbage.
        file.set_len(offset)?;
        Ok(FileStore {
            file: Mutex::new(file),
            path: path.as_ref().to_path_buf(),
            index,
            end_offset: offset,
            payload_bytes,
            sync_on_put: false,
            trace: kishu_trace::Trace::disabled(),
        })
    }

    /// Enable fsync after every [`CheckpointStore::put`] (durability over
    /// throughput).
    pub fn set_sync_on_put(&mut self, on: bool) {
        self.sync_on_put = on;
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl CheckpointStore for FileStore {
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId> {
        if bytes.len() > u32::MAX as usize {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "blob too large"));
        }
        let mut sp = self.trace.span("file.put");
        sp.arg("bytes", bytes.len());
        self.trace.observe("file.put_bytes", bytes.len() as u64);
        let crc = crc32(bytes);
        let mut record = Vec::with_capacity(HEADER_LEN as usize + bytes.len());
        record.push(RECORD_MARKER);
        record.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc.to_le_bytes());
        record.extend_from_slice(bytes);
        {
            let mut file = self.file.lock().expect("store lock poisoned");
            file.seek(SeekFrom::Start(self.end_offset))?;
            file.write_all(&record)?;
            if self.sync_on_put {
                file.sync_data()?;
            }
        }
        let payload_off = self.end_offset + HEADER_LEN;
        self.index.push((payload_off, bytes.len() as u32));
        self.end_offset += record.len() as u64;
        self.payload_bytes += bytes.len() as u64;
        Ok((self.index.len() - 1) as BlobId)
    }

    fn get(&self, id: BlobId) -> io::Result<Vec<u8>> {
        let (off, len) = *self
            .index
            .get(id as usize)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {id}")))?;
        let mut sp = self.trace.span("file.get");
        sp.arg("blob", id);
        sp.arg("bytes", len);
        self.trace.observe("file.get_bytes", len as u64);
        // One locked seek+read covering the stored CRC and the payload, so
        // the integrity check and the bytes it checks come from the same
        // observation of the file.
        let mut buf = vec![0u8; 4 + len as usize];
        {
            let mut file = self.file.lock().expect("store lock poisoned");
            file.seek(SeekFrom::Start(off - 4))?;
            file.read_exact(&mut buf)?;
        }
        let crc = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        buf.drain(..4);
        if crc32(&buf) != crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("blob {id} failed its integrity check"),
            ));
        }
        Ok(buf)
    }

    fn blob_count(&self) -> u64 {
        self.index.len() as u64
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            blobs: self.index.len() as u64,
            payload_bytes: self.payload_bytes,
            physical_bytes: self.end_offset,
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let _sp = self.trace.span("file.sync");
        self.file.lock().expect("store lock poisoned").sync_data()
    }

    fn attach_trace(&mut self, trace: &kishu_trace::Trace) {
        self.trace = trace.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kishu-fs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = temp_path("reopen.log");
        {
            let mut s = FileStore::create(&path).expect("create");
            s.put(b"one").expect("put");
            s.put(b"two").expect("put");
            s.sync().expect("sync");
        }
        let s = FileStore::open(&path).expect("open");
        assert_eq!(s.blob_count(), 2);
        assert_eq!(s.get(0).expect("get"), b"one");
        assert_eq!(s.get(1).expect("get"), b"two");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_recovered() {
        let path = temp_path("torn.log");
        {
            let mut s = FileStore::create(&path).expect("create");
            s.put(b"intact-record").expect("put");
            s.put(&vec![9u8; 5000]).expect("put");
            s.sync().expect("sync");
        }
        // Tear the tail: chop 100 bytes off the last record.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open raw");
        f.set_len(len - 100).expect("truncate");
        drop(f);

        let mut s = FileStore::open(&path).expect("recover");
        assert_eq!(s.blob_count(), 1, "only the intact record survives");
        assert_eq!(s.get(0).expect("get"), b"intact-record");
        // Appends after recovery work.
        let id = s.put(b"after-recovery").expect("put");
        assert_eq!(s.get(id).expect("get"), b"after-recovery");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let path = temp_path("corrupt.log");
        let (off, _len) = {
            let mut s = FileStore::create(&path).expect("create");
            s.put(b"precious-data").expect("put");
            s.sync().expect("sync");
            s.index[0]
        };
        // Flip a payload byte on disk.
        let mut f = OpenOptions::new().read(true).write(true).open(&path).expect("raw");
        f.seek(SeekFrom::Start(off + 2)).expect("seek");
        f.write_all(&[0xFF]).expect("write");
        drop(f);

        // A live handle (index built before corruption) must detect it.
        let s = FileStore::open(&path);
        if let Ok(s) = s {
            // If recovery kept it (it shouldn't), reading must fail.
            assert!(s.blob_count() == 0 || s.get(0).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_marker_stops_recovery() {
        let path = temp_path("garbage.log");
        {
            let mut s = FileStore::create(&path).expect("create");
            s.put(b"good").expect("put");
            s.sync().expect("sync");
        }
        // Append garbage that does not start with the record marker.
        let mut f = OpenOptions::new().append(true).open(&path).expect("raw");
        f.write_all(&[0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09])
            .expect("write");
        drop(f);
        let s = FileStore::open(&path).expect("recover");
        assert_eq!(s.blob_count(), 1);
        assert_eq!(s.get(0).expect("get"), b"good");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn physical_bytes_include_framing() {
        let path = temp_path("framing.log");
        let mut s = FileStore::create(&path).expect("create");
        s.put(&[0u8; 100]).expect("put");
        let st = s.stats();
        assert_eq!(st.payload_bytes, 100);
        assert_eq!(st.physical_bytes, 100 + HEADER_LEN);
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kishu_testkit::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn random_blob_sequences_roundtrip(
            blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2000), 1..20)
        ) {
            let dir = std::env::temp_dir().join(format!("kishu-fsprop-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            let path = dir.join(format!("p{}.log", crc32(&blobs.concat())));
            let _ = std::fs::remove_file(&path);
            {
                let mut s = FileStore::create(&path).expect("create");
                for b in &blobs {
                    s.put(b).expect("put");
                }
                s.sync().expect("sync");
            }
            let s = FileStore::open(&path).expect("open");
            prop_assert_eq!(s.blob_count(), blobs.len() as u64);
            for (i, b) in blobs.iter().enumerate() {
                prop_assert_eq!(&s.get(i as u64).expect("get"), b);
            }
            std::fs::remove_file(&path).ok();
        }
    }
}
