//! Durable append-only log store.
//!
//! Record layout (little-endian), one frame per record:
//!
//! ```text
//! +--------+----------+-----------+-------------+
//! | marker | len: u32 | crc32: u32| payload     |
//! +--------+----------+-----------+-------------+
//! ```
//!
//! Three markers share the framing (storage engine v2):
//!
//! * `0x4B` ('K') — a **v1 blob**: the payload is the logical blob verbatim.
//!   The only record type with chunking off (`KISHU_CHUNKING=0` produces
//!   bit-identical v1 logs), and still what sub-minimum payloads write.
//! * `0x43` ('C') — a **chunk**: the payload is a stored-form chunk
//!   (`[flag][data]`, optionally compressed — see [`crate::chunk`]).
//!   Chunks get dense ords in append order and are shared across blobs.
//! * `0x4D` ('M') — a **manifest**: one logical blob as
//!   `[raw_len: u64][nchunks: u32][chunk ord: u32 × n]`. A manifest is
//!   always appended *after* every chunk it references, so torn-tail
//!   recovery composes: a blob exists iff its manifest survived.
//!
//! The single-byte record marker plus the CRC over the payload makes torn
//! tail writes detectable: on open, the log is scanned, every intact record
//! is indexed, and the first damaged/truncated record ends recovery — the
//! file is truncated back to the last intact boundary, exactly the recovery
//! contract of a write-ahead log.
//!
//! **Group commit** (`KISHU_GROUP_COMMIT`, default on): puts append frames
//! to an in-process buffer on the session thread, in plan order, and the
//! buffer reaches the file at the next [`CheckpointStore::sync`],
//! [`CheckpointStore::flush_barrier`], size threshold, or drop. Reads are
//! served from the buffer transparently, so the logical view is identical
//! to unbuffered operation; with `sync_on_put` the per-record fsync is
//! amortized into one fsync at the barrier.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use std::sync::Mutex;

use crate::chunk::{decode_chunk, stored_chunk_raw_len, ChunkConfig, ChunkLedger, ChunkStats};
use crate::crc32::crc32;
use crate::dedup::content_key;
use crate::{BlobId, CheckpointStore, PutReceipt, StoreStats};

/// Marker of a v1 full-blob record.
pub const MARKER_V1: u8 = 0x4B; // 'K'
/// Marker of a v2 chunk record.
pub const MARKER_CHUNK: u8 = 0x43; // 'C'
/// Marker of a v2 manifest record.
pub const MARKER_MANIFEST: u8 = 0x4D; // 'M'

const HEADER_LEN: u64 = 1 + 4 + 4;

/// Group-commit buffer flush threshold: bounds memory, not durability.
const PENDING_FLUSH_BYTES: usize = 8 << 20;

/// Append a `marker`-framed record to `out`.
fn frame_with(out: &mut Vec<u8>, marker: u8, payload: &[u8]) {
    out.push(marker);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Append `payload` to `out` framed exactly as a v1 [`FileStore::put`]
/// writes it (marker, length, CRC, payload), so writers that build whole
/// log images out-of-place — GC compaction rewriting a generation —
/// produce files [`FileStore::open`] recovers with the same torn-tail
/// semantics.
pub(crate) fn frame_record(out: &mut Vec<u8>, payload: &[u8]) {
    frame_with(out, MARKER_V1, payload);
}

/// One logical blob in the index.
#[derive(Debug)]
enum BlobEntry {
    /// v1 record: (payload offset, payload len).
    V1(u64, u32),
    /// v2 blob: chunk ords in payload order.
    Chunked { raw_len: u64, ords: Vec<u32> },
}

/// Append-only log-file blob store with CRC-checked records and recovery.
pub struct FileStore {
    file: Mutex<File>,
    path: PathBuf,
    index: Vec<BlobEntry>,
    /// (payload offset, payload len) of each chunk record, by ord.
    chunk_index: Vec<(u64, u32)>,
    ledger: ChunkLedger,
    cfg: ChunkConfig,
    /// Bytes durably in the file (group-commit buffer starts here).
    flushed_end: u64,
    /// Framed records accepted by `put` but not yet written to the file.
    pending: Vec<u8>,
    group_commit: bool,
    payload_bytes: u64,
    sync_on_put: bool,
    trace: kishu_trace::Trace,
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("path", &self.path)
            .field("blobs", &self.index.len())
            .field("chunks", &self.chunk_index.len())
            .finish()
    }
}

fn group_commit_from_env() -> bool {
    match std::env::var("KISHU_GROUP_COMMIT") {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
        Err(_) => true,
    }
}

impl FileStore {
    /// Create a new, empty log at `path` (truncating any existing file),
    /// with chunking and group commit configured from the environment.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::create_with(path, ChunkConfig::from_env(), group_commit_from_env())
    }

    /// Create with explicit configuration (differential tests pin both
    /// arms programmatically; env vars are process-global).
    pub fn create_with(
        path: impl AsRef<Path>,
        cfg: ChunkConfig,
        group_commit: bool,
    ) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        Ok(FileStore {
            file: Mutex::new(file),
            path: path.as_ref().to_path_buf(),
            index: Vec::new(),
            chunk_index: Vec::new(),
            ledger: ChunkLedger::new(),
            cfg,
            flushed_end: 0,
            pending: Vec::new(),
            group_commit,
            payload_bytes: 0,
            sync_on_put: false,
            trace: kishu_trace::Trace::disabled(),
        })
    }

    /// Open an existing log, recovering its index by scanning. A torn or
    /// corrupt tail is truncated away; everything before it stays readable.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(path, ChunkConfig::from_env(), group_commit_from_env())
    }

    /// Open with explicit configuration. The scan accepts any mix of v1
    /// and v2 records regardless of `cfg` — the config only governs how
    /// *future* puts are represented, so logs written under other knob
    /// settings (or by older versions) stay readable.
    pub fn open_with(
        path: impl AsRef<Path>,
        cfg: ChunkConfig,
        group_commit: bool,
    ) -> io::Result<Self> {
        let mut file = OpenOptions::new().read(true).write(true).open(path.as_ref())?;
        let file_len = file.metadata()?.len();
        let mut index = Vec::new();
        let mut chunk_index: Vec<(u64, u32)> = Vec::new();
        let mut ledger = ChunkLedger::new();
        let mut payload_bytes = 0u64;
        let mut offset = 0u64;
        let mut buf = Vec::new();
        while offset + HEADER_LEN <= file_len {
            file.seek(SeekFrom::Start(offset))?;
            let mut header = [0u8; HEADER_LEN as usize];
            file.read_exact(&mut header)?;
            let marker = header[0];
            if !matches!(marker, MARKER_V1 | MARKER_CHUNK | MARKER_MANIFEST) {
                break; // garbage: end recovery here
            }
            let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]);
            let crc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
            let payload_off = offset + HEADER_LEN;
            if payload_off + len as u64 > file_len {
                break; // torn write
            }
            buf.resize(len as usize, 0);
            file.read_exact(&mut buf)?;
            if crc32(&buf) != crc {
                break; // corrupted record
            }
            match marker {
                MARKER_V1 => {
                    index.push(BlobEntry::V1(payload_off, len));
                    payload_bytes += len as u64;
                }
                MARKER_CHUNK => {
                    let Ok(raw_len) = stored_chunk_raw_len(&buf) else {
                        break; // CRC-valid but malformed: treat as tail damage
                    };
                    let ord = chunk_index.len() as u32;
                    ledger.register(content_key(&buf), ord, raw_len, len as u64);
                    chunk_index.push((payload_off, len));
                }
                _ => {
                    let Some((raw_len, ords)) = parse_manifest(&buf) else {
                        break;
                    };
                    if ords.iter().any(|&o| o as usize >= chunk_index.len()) {
                        break; // references a chunk recovery never saw
                    }
                    for &o in &ords {
                        ledger.add_ref(o);
                    }
                    index.push(BlobEntry::Chunked { raw_len, ords });
                    payload_bytes += raw_len;
                }
            }
            offset = payload_off + len as u64;
        }
        // Truncate away anything after the last intact record so appends
        // never interleave with garbage.
        file.set_len(offset)?;
        Ok(FileStore {
            file: Mutex::new(file),
            path: path.as_ref().to_path_buf(),
            index,
            chunk_index,
            ledger,
            cfg,
            flushed_end: offset,
            pending: Vec::new(),
            group_commit,
            payload_bytes,
            sync_on_put: false,
            trace: kishu_trace::Trace::disabled(),
        })
    }

    /// Enable fsync after every [`CheckpointStore::put`] (durability over
    /// throughput). Under group commit the per-put fsync is amortized into
    /// one fsync at each flush point instead.
    pub fn set_sync_on_put(&mut self, on: bool) {
        self.sync_on_put = on;
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Next append position (durable bytes + buffered bytes).
    fn end_offset(&self) -> u64 {
        self.flushed_end + self.pending.len() as u64
    }

    /// Write the group-commit buffer to the file (no fsync).
    fn flush_pending(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut sp = self.trace.span("file.flush_pending");
        sp.arg("bytes", self.pending.len());
        let mut file = self.file.lock().expect("store lock poisoned");
        file.seek(SeekFrom::Start(self.flushed_end))?;
        file.write_all(&self.pending)?;
        self.flushed_end += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Append one framed record (via the buffer under group commit, else
    /// directly), returning its payload offset.
    fn append_frame(&mut self, marker: u8, payload: &[u8]) -> io::Result<u64> {
        let payload_off = self.end_offset() + HEADER_LEN;
        let mut record = Vec::with_capacity(HEADER_LEN as usize + payload.len());
        frame_with(&mut record, marker, payload);
        if self.group_commit {
            self.pending.extend_from_slice(&record);
            if self.pending.len() >= PENDING_FLUSH_BYTES {
                self.flush_pending()?;
            }
        } else {
            let mut file = self.file.lock().expect("store lock poisoned");
            file.seek(SeekFrom::Start(self.flushed_end))?;
            file.write_all(&record)?;
            if self.sync_on_put {
                file.sync_data()?;
            }
            drop(file);
            self.flushed_end += record.len() as u64;
        }
        Ok(payload_off)
    }

    /// Read a record's CRC + payload (from the buffer if not yet flushed)
    /// and verify it. One observation covers the check and the bytes.
    fn read_verified(&self, payload_off: u64, len: u32, what: &str) -> io::Result<Vec<u8>> {
        let start = payload_off - 4;
        let total = 4 + len as usize;
        let mut buf;
        if start >= self.flushed_end {
            let i = (start - self.flushed_end) as usize;
            buf = self.pending[i..i + total].to_vec();
        } else {
            buf = vec![0u8; total];
            let mut file = self.file.lock().expect("store lock poisoned");
            file.seek(SeekFrom::Start(start))?;
            file.read_exact(&mut buf)?;
        }
        let crc = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        buf.drain(..4);
        if crc32(&buf) != crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{what} failed its integrity check"),
            ));
        }
        Ok(buf)
    }
}

/// Manifest payload: `[raw_len: u64][nchunks: u32][ord: u32 × n]`.
fn encode_manifest(raw_len: u64, ords: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + 4 * ords.len());
    out.extend_from_slice(&raw_len.to_le_bytes());
    out.extend_from_slice(&(ords.len() as u32).to_le_bytes());
    for &o in ords {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out
}

fn parse_manifest(payload: &[u8]) -> Option<(u64, Vec<u32>)> {
    if payload.len() < 12 {
        return None;
    }
    let raw_len = u64::from_le_bytes(payload[..8].try_into().ok()?);
    let n = u32::from_le_bytes(payload[8..12].try_into().ok()?) as usize;
    if payload.len() != 12 + 4 * n {
        return None;
    }
    let ords = payload[12..]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Some((raw_len, ords))
}

impl CheckpointStore for FileStore {
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId> {
        self.put_with_receipt(bytes).map(|r| r.id)
    }

    fn put_with_receipt(&mut self, bytes: &[u8]) -> io::Result<PutReceipt> {
        if bytes.len() > u32::MAX as usize {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "blob too large"));
        }
        let mut sp = self.trace.span("file.put");
        sp.arg("bytes", bytes.len());
        self.trace.observe("file.put_bytes", bytes.len() as u64);
        let id = self.index.len() as BlobId;

        if !self.cfg.chunks_payload(bytes.len()) {
            let payload_off = self.append_frame(MARKER_V1, bytes)?;
            self.index.push(BlobEntry::V1(payload_off, bytes.len() as u32));
            self.payload_bytes += bytes.len() as u64;
            return Ok(PutReceipt {
                id,
                bytes_written: HEADER_LEN + bytes.len() as u64,
                ..PutReceipt::default()
            });
        }

        // Chunked put: new chunks first, then the manifest that makes the
        // blob exist — recovery-ordering invariant of the v2 format.
        let mut ledger = std::mem::take(&mut self.ledger);
        let cfg = self.cfg.clone();
        let result = ledger.ingest(bytes, &cfg, |stored| {
            let payload_off = self.append_frame(MARKER_CHUNK, stored)?;
            let ord = self.chunk_index.len() as u32;
            self.chunk_index.push((payload_off, stored.len() as u32));
            Ok(ord)
        });
        self.ledger = ledger;
        let (ords, r) = result?;
        let manifest = encode_manifest(bytes.len() as u64, &ords);
        let manifest_len = manifest.len() as u64;
        self.append_frame(MARKER_MANIFEST, &manifest)?;
        self.index.push(BlobEntry::Chunked {
            raw_len: bytes.len() as u64,
            ords,
        });
        self.payload_bytes += bytes.len() as u64;
        self.trace.observe("file.chunks_written", r.chunks_written);
        self.trace.observe("file.chunks_deduped", r.chunks_deduped);
        Ok(PutReceipt {
            id,
            bytes_written: r.stored_bytes_written
                + r.chunks_written * HEADER_LEN
                + HEADER_LEN
                + manifest_len,
            chunks_written: r.chunks_written,
            chunks_deduped: r.chunks_deduped,
            bytes_compressed: r.raw_bytes_written.saturating_sub(r.stored_bytes_written),
        })
    }

    fn get(&self, id: BlobId) -> io::Result<Vec<u8>> {
        let entry = self
            .index
            .get(id as usize)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {id}")))?;
        let mut sp = self.trace.span("file.get");
        sp.arg("blob", id);
        match entry {
            BlobEntry::V1(off, len) => {
                sp.arg("bytes", *len);
                self.trace.observe("file.get_bytes", *len as u64);
                self.read_verified(*off, *len, &format!("blob {id}"))
            }
            BlobEntry::Chunked { raw_len, ords } => {
                sp.arg("bytes", *raw_len);
                self.trace.observe("file.get_bytes", *raw_len);
                let mut out = Vec::with_capacity(*raw_len as usize);
                for &ord in ords {
                    let (off, len) = *self.chunk_index.get(ord as usize).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("blob {id} references missing chunk {ord}"),
                        )
                    })?;
                    let stored = self.read_verified(off, len, &format!("blob {id} chunk {ord}"))?;
                    out.extend_from_slice(&decode_chunk(&stored)?);
                }
                if out.len() as u64 != *raw_len {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("blob {id} reassembled to the wrong length"),
                    ));
                }
                Ok(out)
            }
        }
    }

    fn blob_count(&self) -> u64 {
        self.index.len() as u64
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            blobs: self.index.len() as u64,
            payload_bytes: self.payload_bytes,
            physical_bytes: self.end_offset(),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let _sp = self.trace.span("file.sync");
        self.flush_pending()?;
        self.file.lock().expect("store lock poisoned").sync_data()
    }

    fn flush_barrier(&mut self) -> io::Result<()> {
        let _sp = self.trace.span("file.flush_barrier");
        self.flush_pending()?;
        if self.sync_on_put {
            // The fsyncs the burst of puts skipped, amortized into one.
            self.file.lock().expect("store lock poisoned").sync_data()?;
        }
        Ok(())
    }

    fn chunk_stats(&self) -> Option<ChunkStats> {
        self.cfg.enabled.then(|| self.ledger.stats())
    }

    fn attach_trace(&mut self, trace: &kishu_trace::Trace) {
        self.trace = trace.clone();
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Best-effort: buffered records reach the OS before the handle
        // goes away (crash simulations that *want* lost buffers truncate
        // the file instead of dropping the store).
        let _ = self.flush_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kishu_testkit::hash::xxh64;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kishu-fs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = temp_path("reopen.log");
        {
            let mut s = FileStore::create(&path).expect("create");
            s.put(b"one").expect("put");
            s.put(b"two").expect("put");
            s.sync().expect("sync");
        }
        let s = FileStore::open(&path).expect("open");
        assert_eq!(s.blob_count(), 2);
        assert_eq!(s.get(0).expect("get"), b"one");
        assert_eq!(s.get(1).expect("get"), b"two");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_recovered() {
        let path = temp_path("torn.log");
        {
            // Chunking off so the 5000-byte record is a single v1 frame
            // whose tail tear removes exactly one blob.
            let mut s =
                FileStore::create_with(&path, ChunkConfig::disabled(), false).expect("create");
            s.put(b"intact-record").expect("put");
            s.put(&vec![9u8; 5000]).expect("put");
            s.sync().expect("sync");
        }
        // Tear the tail: chop 100 bytes off the last record.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open raw");
        f.set_len(len - 100).expect("truncate");
        drop(f);

        let mut s = FileStore::open(&path).expect("recover");
        assert_eq!(s.blob_count(), 1, "only the intact record survives");
        assert_eq!(s.get(0).expect("get"), b"intact-record");
        // Appends after recovery work.
        let id = s.put(b"after-recovery").expect("put");
        assert_eq!(s.get(id).expect("get"), b"after-recovery");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_is_detected() {
        let path = temp_path("corrupt.log");
        let off = {
            let mut s = FileStore::create(&path).expect("create");
            s.put(b"precious-data").expect("put");
            s.sync().expect("sync");
            match s.index[0] {
                BlobEntry::V1(off, _) => off,
                _ => panic!("13 bytes stays a v1 record"),
            }
        };
        // Flip a payload byte on disk.
        let mut f = OpenOptions::new().read(true).write(true).open(&path).expect("raw");
        f.seek(SeekFrom::Start(off + 2)).expect("seek");
        f.write_all(&[0xFF]).expect("write");
        drop(f);

        // A live handle (index built before corruption) must detect it.
        let s = FileStore::open(&path);
        if let Ok(s) = s {
            // If recovery kept it (it shouldn't), reading must fail.
            assert!(s.blob_count() == 0 || s.get(0).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_marker_stops_recovery() {
        let path = temp_path("garbage.log");
        {
            let mut s = FileStore::create(&path).expect("create");
            s.put(b"good").expect("put");
            s.sync().expect("sync");
        }
        // Append garbage that does not start with any record marker.
        let mut f = OpenOptions::new().append(true).open(&path).expect("raw");
        f.write_all(&[0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09])
            .expect("write");
        drop(f);
        let s = FileStore::open(&path).expect("recover");
        assert_eq!(s.blob_count(), 1);
        assert_eq!(s.get(0).expect("get"), b"good");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn physical_bytes_include_framing() {
        let path = temp_path("framing.log");
        let mut s = FileStore::create(&path).expect("create");
        s.put(&[0u8; 100]).expect("put");
        let st = s.stats();
        assert_eq!(st.payload_bytes, 100);
        assert_eq!(st.physical_bytes, 100 + HEADER_LEN, "sub-minimum payloads stay v1");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_log_dedups_reopens_and_reads_back() {
        let path = temp_path("chunked.log");
        let big: Vec<u8> = (0..300_000u32).map(|i| (i % 11) as u8 ^ (i / 777) as u8).collect();
        let mut edited = big.clone();
        edited[150_000] ^= 0xAA;
        {
            let mut s =
                FileStore::create_with(&path, ChunkConfig::default(), true).expect("create");
            let r1 = s.put_with_receipt(&big).expect("put");
            assert!(r1.chunks_written > 2);
            assert_eq!(r1.chunks_deduped, 0);
            let r2 = s.put_with_receipt(&edited).expect("put");
            assert!(r2.chunks_written <= 3, "1-byte edit rewrote {}", r2.chunks_written);
            assert!(r2.bytes_written < (big.len() / 4) as u64);
            // Reads are served correctly while everything is still in the
            // group-commit buffer.
            assert_eq!(s.get(0).expect("get"), big);
            assert_eq!(s.get(1).expect("get"), edited);
            s.sync().expect("sync");
        }
        // Reopen with the config pinned (plain `open` reads the env, and
        // the KISHU_CHUNKING=0 CI matrix leg must not flip this test's
        // post-reopen puts onto the v1 path).
        let s = FileStore::open_with(&path, ChunkConfig::default(), true).expect("reopen");
        assert_eq!(s.blob_count(), 2);
        assert_eq!(s.get(0).expect("get"), big);
        assert_eq!(s.get(1).expect("get"), edited);
        // The rebuilt ledger keeps deduplicating: re-putting the original
        // payload appends no new chunks.
        let mut s = s;
        let r3 = s.put_with_receipt(&big).expect("put");
        assert_eq!(r3.chunks_written, 0, "reopen must rebuild the dedup map");
        assert!(r3.chunks_deduped > 2, "every chunk resolves to a recovered ord");
        assert!(r3.bytes_written < 200, "only the manifest frame is appended");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn kill_switch_writes_bit_identical_v1_frames() {
        // KISHU_CHUNKING=0 contract: the log bytes with chunking disabled
        // are exactly the v1 format, record for record.
        let payloads: Vec<Vec<u8>> = vec![
            vec![1u8; 10],
            (0..50_000u32).map(|i| (i % 9) as u8).collect(),
            vec![],
        ];
        let path = temp_path("v1twin.log");
        {
            let mut s =
                FileStore::create_with(&path, ChunkConfig::disabled(), false).expect("create");
            for p in &payloads {
                s.put(p).expect("put");
            }
            s.sync().expect("sync");
        }
        let got = std::fs::read(&path).expect("read");
        let mut want = Vec::new();
        for p in &payloads {
            frame_record(&mut want, p);
        }
        assert_eq!(got, want, "kill switch must produce the v1 byte stream");
        // And group commit alone (chunking off) changes nothing either.
        let path2 = temp_path("v1twin-gc.log");
        {
            let mut s =
                FileStore::create_with(&path2, ChunkConfig::disabled(), true).expect("create");
            for p in &payloads {
                s.put(p).expect("put");
            }
            s.sync().expect("sync");
        }
        assert_eq!(std::fs::read(&path2).expect("read"), want);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn v2_frame_golden_bytes() {
        // Format drift guard for the v2 chunked frame. A fixed payload
        // under a fixed config must produce exactly this record structure
        // — and exactly these file bytes (pinned by hash). If this test
        // fails, the on-disk format changed: that must be deliberate, and
        // needs a compat story for existing logs.
        let cfg = ChunkConfig {
            enabled: true,
            compress: true,
            min: 64,
            avg: 64,
            max: 128,
        };
        let payload: Vec<u8> = (0..300u32).map(|i| (i % 7) as u8).collect();
        let path = temp_path("golden.log");
        {
            let mut s = FileStore::create_with(&path, cfg, false).expect("create");
            s.put(&payload).expect("put");
        }
        let log = std::fs::read(&path).expect("read");

        // Walk the records: chunk frames first, then one manifest.
        let mut markers = Vec::new();
        let mut off = 0usize;
        let mut manifest_payload = Vec::new();
        while off + HEADER_LEN as usize <= log.len() {
            let marker = log[off];
            let len =
                u32::from_le_bytes([log[off + 1], log[off + 2], log[off + 3], log[off + 4]])
                    as usize;
            let body = &log[off + HEADER_LEN as usize..off + HEADER_LEN as usize + len];
            if marker == MARKER_MANIFEST {
                manifest_payload = body.to_vec();
            }
            markers.push(marker);
            off += HEADER_LEN as usize + len;
        }
        assert_eq!(off, log.len(), "log ends on a record boundary");
        let n_chunks = markers.iter().filter(|&&m| m == MARKER_CHUNK).count();
        assert!(n_chunks >= 2, "300B at max=128 must cut into at least 3 chunks");
        assert_eq!(
            markers.last(),
            Some(&MARKER_MANIFEST),
            "manifest comes after every chunk it references"
        );
        // Manifest: raw_len=300, nchunks, ords 0..n in order.
        let mut want = Vec::new();
        want.extend_from_slice(&300u64.to_le_bytes());
        want.extend_from_slice(&(n_chunks as u32).to_le_bytes());
        for ord in 0..n_chunks as u32 {
            want.extend_from_slice(&ord.to_le_bytes());
        }
        assert_eq!(manifest_payload, want, "manifest layout drifted");
        // Pinned whole-file hash: catches any byte-level drift (framing,
        // chunk cut points, compressor output) in one assertion.
        assert_eq!(
            xxh64(&log, 0),
            0x695F_5C8F_4477_61D3,
            "v2 log bytes drifted; update deliberately with a compat note"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn group_commit_buffer_survives_barrier_and_drop() {
        let path = temp_path("gcommit.log");
        let payload = vec![5u8; 300];
        {
            let mut s =
                FileStore::create_with(&path, ChunkConfig::disabled(), true).expect("create");
            s.set_sync_on_put(true);
            s.put(&payload).expect("put");
            // Buffered: the file is still empty, but reads work.
            assert_eq!(std::fs::metadata(&path).expect("meta").len(), 0);
            assert_eq!(s.get(0).expect("get"), payload);
            s.flush_barrier().expect("barrier");
            assert_eq!(
                std::fs::metadata(&path).expect("meta").len(),
                HEADER_LEN + payload.len() as u64
            );
            s.put(b"tail").expect("put");
            // Dropped without sync: Drop flushes best-effort.
        }
        let s = FileStore::open(&path).expect("open");
        assert_eq!(s.blob_count(), 2);
        assert_eq!(s.get(0).expect("get"), payload);
        assert_eq!(s.get(1).expect("get"), b"tail");
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kishu_testkit::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn random_blob_sequences_roundtrip(
            blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0usize..2000), 1usize..20)
        ) {
            let dir = std::env::temp_dir().join(format!("kishu-fsprop-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            let path = dir.join(format!("p{}.log", crc32(&blobs.concat())));
            let _ = std::fs::remove_file(&path);
            {
                let mut s = FileStore::create(&path).expect("create");
                for b in &blobs {
                    s.put(b).expect("put");
                }
                s.sync().expect("sync");
            }
            let s = FileStore::open(&path).expect("open");
            prop_assert_eq!(s.blob_count(), blobs.len() as u64);
            for (i, b) in blobs.iter().enumerate() {
                prop_assert_eq!(&s.get(i as u64).expect("get"), b);
            }
            std::fs::remove_file(&path).ok();
        }

        #[test]
        fn chunked_and_v1_logs_agree_logically(
            blobs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0usize..30_000), 1usize..8)
        ) {
            let dir = std::env::temp_dir().join(format!("kishu-fsprop-{}", std::process::id()));
            std::fs::create_dir_all(&dir).expect("mkdir");
            let tag = crc32(&blobs.concat());
            let p_on = dir.join(format!("on{tag}.log"));
            let p_off = dir.join(format!("off{tag}.log"));
            let _ = std::fs::remove_file(&p_on);
            let _ = std::fs::remove_file(&p_off);
            let mut on = FileStore::create_with(&p_on, ChunkConfig::default(), true).expect("create");
            let mut off = FileStore::create_with(&p_off, ChunkConfig::disabled(), false).expect("create");
            for b in &blobs {
                prop_assert_eq!(on.put(b).expect("put"), off.put(b).expect("put"));
            }
            for (i, b) in blobs.iter().enumerate() {
                prop_assert_eq!(&on.get(i as u64).expect("get"), b);
                prop_assert_eq!(&off.get(i as u64).expect("get"), b);
            }
            prop_assert_eq!(on.blob_count(), off.blob_count());
            let (s_on, s_off) = (on.stats(), off.stats());
            prop_assert_eq!(s_on.blobs, s_off.blobs);
            prop_assert_eq!(s_on.payload_bytes, s_off.payload_bytes);
            std::fs::remove_file(&p_on).ok();
            std::fs::remove_file(&p_off).ok();
        }
    }
}
