//! Mark-and-sweep GC / compaction for the [`SharedStore`].
//!
//! Unreferenced blobs accumulate in a shared store for two reasons: GC-able
//! history (a tenant's superseded graph snapshots — every `persist` writes
//! a fresh one) and safe-direction leaks (a payload written just before its
//! mapping append failed). [`SharedStore::collect`] reclaims them:
//!
//! 1. **Mark** — the caller supplies, for *every* registered tenant, the
//!    set of tenant blob ids its live `CheckpointGraph` can still reach
//!    (`KishuSession::live_blobs`). A physical blob is live iff some
//!    tenant's live mapping references it. Requiring every tenant to appear
//!    makes "I forgot a session" a hard error instead of silent data loss.
//! 2. **Sweep** — each shard is compacted into a new generation containing
//!    only live payloads (renumbered densely); tenant mappings are
//!    rewritten against the new indices, with reclaimed ids tombstoned so
//!    tenant ids stay dense forever.
//! 3. **Commit** — for a file-backed store, all new-generation files are
//!    written and synced *before* the manifest is atomically renamed over;
//!    the rename is the commit point. A crash at any byte before it leaves
//!    the old generation fully intact (stray new-generation files are swept
//!    on `open`); a crash after it finds a complete new generation. The
//!    [`SharedStore::set_crash_after_bytes`] hook exists precisely to prove
//!    this at every byte.
//!
//! GC is **stop-the-world between checkpoints**: it holds the store's meta
//! lock and every shard lock for its whole run, so it cannot interleave
//! with tenant operations; callers run it when their sessions are parked
//! (which is also when live sets are well-defined). It is a pure space
//! optimization — after a collection, every live blob of every tenant reads
//! back byte-identically under the same tenant id. Because skipping it is
//! always safe, `KISHU_GC=0` is the operational kill-switch: with it set,
//! [`SharedStore::collect`] validates its inputs but reclaims nothing.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::io;
use std::path::Path;

use kishu_testkit::json::Json;

use crate::dedup::content_key;
use crate::file_store::{frame_record, FileStore};
use crate::shared::{
    encode_mapping, manifest_json, manifest_path, remove_stale_generations, shard_path,
    tenant_path, Backend, Phys,
};
use crate::{BlobId, CheckpointStore, MemoryStore, SharedStore};

/// What one collection did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Physical blobs surviving the sweep.
    pub live_blobs: u64,
    /// Physical blobs reclaimed.
    pub reclaimed_blobs: u64,
    /// Payload bytes reclaimed.
    pub reclaimed_payload_bytes: u64,
    /// Aggregate physical bytes (framing included) before the sweep.
    pub physical_before: u64,
    /// Aggregate physical bytes after the sweep.
    pub physical_after: u64,
    /// The generation this collection committed.
    pub generation: u64,
}

impl GcReport {
    /// JSON form, for bench output.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("live_blobs", Json::Int(self.live_blobs as i64)),
            ("reclaimed_blobs", Json::Int(self.reclaimed_blobs as i64)),
            ("reclaimed_payload_bytes", Json::Int(self.reclaimed_payload_bytes as i64)),
            ("physical_before", Json::Int(self.physical_before as i64)),
            ("physical_after", Json::Int(self.physical_after as i64)),
            ("generation", Json::Int(self.generation as i64)),
        ])
    }
}

/// Write `bytes` to `path` and sync, honoring the crash budget: if the
/// budget runs out mid-file, exactly the budgeted prefix lands on disk and
/// the "machine dies" (`ErrorKind::Interrupted`).
fn write_budgeted(path: &Path, bytes: &[u8], budget: &mut Option<u64>) -> io::Result<()> {
    use std::io::Write;
    let allowed = budget.map_or(bytes.len() as u64, |b| b.min(bytes.len() as u64));
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes[..allowed as usize])?;
    f.sync_data()?;
    if let Some(b) = budget.as_mut() {
        *b -= allowed;
    }
    if allowed < bytes.len() as u64 {
        return Err(io::Error::new(io::ErrorKind::Interrupted, "injected gc crash mid-write"));
    }
    Ok(())
}

/// The `KISHU_GC` kill-switch: `0` (or empty) disables collection. GC is a
/// pure space optimization, so disabling it is always safe — the store just
/// stops reclaiming.
fn gc_enabled() -> bool {
    match std::env::var("KISHU_GC") {
        Ok(v) => v != "0" && !v.is_empty(),
        Err(_) => true,
    }
}

/// The commit rename under the crash budget (it costs one budget unit, so
/// the sweep can also die in the instant between a fully written manifest
/// temp file and the rename).
fn rename_budgeted(from: &Path, to: &Path, budget: &mut Option<u64>) -> io::Result<()> {
    if let Some(b) = budget.as_mut() {
        if *b == 0 {
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected gc crash before manifest rename",
            ));
        }
        *b -= 1;
    }
    std::fs::rename(from, to)
}

impl SharedStore {
    /// Collect garbage: reclaim every physical blob unreferenced by the
    /// supplied live sets and compact the store into a new generation.
    ///
    /// `live` maps **every registered tenant** (extra or missing names are
    /// an `InvalidInput` error) to the tenant blob ids its live graph
    /// reaches — [`crate::CheckpointStore`] ids as that tenant sees them.
    /// An empty set means "this tenant reaches nothing" and reclaims all
    /// its blobs (their ids tombstone; they never get reused).
    ///
    /// On any error the committed state — in memory and on disk — is
    /// untouched; a file-backed store additionally survives a kill at any
    /// byte of the commit (see the module docs).
    pub fn collect(&self, live: &BTreeMap<String, BTreeSet<BlobId>>) -> io::Result<GcReport> {
        let trace = self.inner.trace.lock().expect("trace lock").clone();
        let mut meta = self.inner.meta.lock().expect("meta lock");
        let mut shards: Vec<_> =
            self.inner.shards.iter().map(|s| s.lock().expect("shard lock")).collect();
        let physical_before: u64 = shards.iter().map(|sh| sh.store.stats().physical_bytes).sum();

        // ---- Mark ---------------------------------------------------
        let mut new_refs: Vec<Vec<u64>> = shards.iter().map(|sh| vec![0u64; sh.refs.len()]).collect();
        let mut new_mappings: BTreeMap<String, Vec<Option<(Phys, u64)>>> = BTreeMap::new();
        {
            let mut sp = trace.span("gc.mark");
            for name in meta.tenants.keys() {
                if !live.contains_key(name) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("gc live sets missing registered tenant {name:?}"),
                    ));
                }
            }
            for name in live.keys() {
                if !meta.tenants.contains_key(name) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("gc live set names unregistered tenant {name:?}"),
                    ));
                }
            }
            // Kill-switch: inputs validated, nothing reclaimed.
            if !gc_enabled() {
                sp.arg("disabled", true);
                return Ok(GcReport {
                    live_blobs: shards
                        .iter()
                        .map(|sh| sh.refs.iter().filter(|&&r| r > 0).count() as u64)
                        .sum(),
                    physical_before,
                    physical_after: physical_before,
                    generation: meta.generation,
                    ..GcReport::default()
                });
            }
            for (name, t) in &meta.tenants {
                let keep = &live[name];
                let mapped: Vec<Option<(Phys, u64)>> = t
                    .blobs
                    .iter()
                    .enumerate()
                    .map(|(id, m)| match m {
                        Some((p, len)) if keep.contains(&(id as u64)) => {
                            new_refs[p.shard as usize][p.idx as usize] += 1;
                            Some((*p, *len))
                        }
                        _ => None,
                    })
                    .collect();
                new_mappings.insert(name.clone(), mapped);
            }
            sp.arg("tenants", meta.tenants.len());
        }

        // ---- Sweep --------------------------------------------------
        // remap[shard][old idx] → new idx for survivors; kept payload bytes
        // are read out now so the commit below is write-only.
        let mut remap: Vec<Vec<Option<u32>>> = Vec::with_capacity(shards.len());
        let mut kept: Vec<Vec<Vec<u8>>> = Vec::with_capacity(shards.len());
        let mut report = GcReport { physical_before, ..GcReport::default() };
        {
            let mut sp = trace.span("gc.sweep");
            for (i, sh) in shards.iter().enumerate() {
                let mut shard_remap = Vec::with_capacity(sh.refs.len());
                let mut shard_kept = Vec::new();
                for (idx, &nref) in new_refs[i].iter().enumerate() {
                    if nref > 0 {
                        // A live blob that cannot be read back aborts the
                        // collection before anything is mutated: GC must
                        // never turn an injected read fault into data loss.
                        let bytes = sh.store.get(idx as u64)?;
                        shard_remap.push(Some(shard_kept.len() as u32));
                        shard_kept.push(bytes);
                        report.live_blobs += 1;
                    } else {
                        shard_remap.push(None);
                        report.reclaimed_blobs += 1;
                        report.reclaimed_payload_bytes += sh.lens[idx];
                    }
                }
                remap.push(shard_remap);
                kept.push(shard_kept);
            }
            sp.arg("live", report.live_blobs);
            sp.arg("reclaimed", report.reclaimed_blobs);
        }
        for mappings in new_mappings.values_mut() {
            for m in mappings.iter_mut().flatten() {
                let p = &mut m.0;
                p.idx = remap[p.shard as usize][p.idx as usize]
                    .expect("marked blob survived the sweep");
            }
        }

        // ---- Commit -------------------------------------------------
        let mut sp = trace.span("gc.commit");
        let next_gen = meta.generation + 1;
        sp.arg("generation", next_gen);
        match &self.inner.backend {
            Backend::Memory => {
                for (i, sh) in shards.iter_mut().enumerate() {
                    let mut store = MemoryStore::new();
                    let mut dedup = HashMap::new();
                    let mut lens = Vec::new();
                    for bytes in &kept[i] {
                        let idx = store.put(bytes).expect("memory put") as u32;
                        dedup.entry(content_key(bytes)).or_insert(idx);
                        lens.push(bytes.len() as u64);
                    }
                    sh.store = Box::new(store);
                    sh.dedup = dedup;
                    sh.lens = lens;
                    sh.refs = new_refs[i].iter().copied().filter(|&r| r > 0).collect();
                }
            }
            Backend::File { dir } => {
                let mut budget = self.inner.crash_after.lock().expect("crash lock");
                for (i, shard_kept) in kept.iter().enumerate() {
                    let mut image = Vec::new();
                    for bytes in shard_kept {
                        frame_record(&mut image, bytes);
                    }
                    write_budgeted(&shard_path(dir, i, next_gen), &image, &mut budget)?;
                }
                for (name, mappings) in &new_mappings {
                    let mut image = Vec::new();
                    for m in mappings {
                        frame_record(&mut image, &encode_mapping(*m));
                    }
                    write_budgeted(&tenant_path(dir, name, next_gen), &image, &mut budget)?;
                }
                let names: Vec<&str> = meta.tenants.keys().map(String::as_str).collect();
                let manifest = manifest_json(self.inner.nshards, next_gen, &names);
                let tmp = dir.join("MANIFEST.tmp");
                write_budgeted(&tmp, manifest.dump().as_bytes(), &mut budget)?;
                rename_budgeted(&tmp, &manifest_path(dir), &mut budget)?;
                // Committed. Swap the in-memory state over to the new
                // generation; failures past this point must not un-commit,
                // so reopen errors propagate but the manifest stays.
                for (i, sh) in shards.iter_mut().enumerate() {
                    let store = FileStore::open(shard_path(dir, i, next_gen))?;
                    let mut dedup = HashMap::new();
                    let mut lens = Vec::new();
                    for (idx, bytes) in kept[i].iter().enumerate() {
                        dedup.entry(content_key(bytes)).or_insert(idx as u32);
                        lens.push(bytes.len() as u64);
                    }
                    sh.store = Box::new(store);
                    sh.dedup = dedup;
                    sh.lens = lens;
                    sh.refs = new_refs[i].iter().copied().filter(|&r| r > 0).collect();
                }
                for (name, t) in meta.tenants.iter_mut() {
                    t.log = Some(FileStore::open(tenant_path(dir, name, next_gen))?);
                }
                remove_stale_generations(dir, next_gen);
            }
        }
        for (name, t) in meta.tenants.iter_mut() {
            let mappings = new_mappings.remove(name).expect("mapping built in mark");
            t.payload_bytes = mappings.iter().flatten().map(|(_, len)| len).sum();
            t.blobs = mappings;
        }
        meta.generation = next_gen;
        report.generation = next_gen;
        report.physical_after = shards.iter().map(|sh| sh.store.stats().physical_bytes).sum();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kishu-gc-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn live(sets: &[(&str, &[u64])]) -> BTreeMap<String, BTreeSet<BlobId>> {
        sets.iter().map(|(n, ids)| (n.to_string(), ids.iter().copied().collect())).collect()
    }

    #[test]
    fn unreferenced_blobs_are_fully_reclaimed() {
        let store = SharedStore::in_memory(4);
        let mut a = store.tenant("a").expect("tenant");
        let mut b = store.tenant("b").expect("tenant");
        a.put(b"a's live payload").expect("put"); // a/0: live
        a.put(b"a's dead payload").expect("put"); // a/1: dead
        b.put(b"a's live payload").expect("put"); // b/0: dead, but shares a/0's phys
        b.put(b"b's own live payload").expect("put"); // b/1: live
        let r = store.collect(&live(&[("a", &[0]), ("b", &[1])])).expect("gc");
        assert_eq!(r.live_blobs, 2);
        assert_eq!(r.reclaimed_blobs, 1, "only 'a's dead payload' became unreferenced");
        assert_eq!(r.reclaimed_payload_bytes, b"a's dead payload".len() as u64);
        assert_eq!(r.generation, 1);
        assert!(r.physical_after < r.physical_before);
        // Live blobs read back under unchanged tenant ids.
        assert_eq!(a.get(0).expect("get"), b"a's live payload");
        assert_eq!(b.get(1).expect("get"), b"b's own live payload");
        // Reclaimed ids are tombstones, not reused.
        assert_eq!(a.get(1).expect_err("dead").kind(), io::ErrorKind::NotFound);
        assert_eq!(b.get(0).expect_err("dead").kind(), io::ErrorKind::NotFound);
        assert_eq!(a.blob_count(), 2, "ids stay dense");
        store.check_invariants(true).expect("invariants");
        // New writes go to fresh ids.
        assert_eq!(a.put(b"post-gc").expect("put"), 2);
        assert_eq!(a.get(2).expect("get"), b"post-gc");
    }

    #[test]
    fn gc_never_reclaims_a_blob_any_tenant_reaches() {
        let store = SharedStore::in_memory(2);
        let mut a = store.tenant("a").expect("tenant");
        let mut b = store.tenant("b").expect("tenant");
        let shared = vec![7u8; 2000];
        a.put(&shared).expect("put");
        b.put(&shared).expect("put");
        // a drops it; b still reaches it.
        let r = store.collect(&live(&[("a", &[]), ("b", &[0])])).expect("gc");
        assert_eq!(r.reclaimed_blobs, 0, "b's reference keeps the payload");
        assert_eq!(b.get(0).expect("get"), shared);
        // Now b drops it too.
        let r = store.collect(&live(&[("a", &[]), ("b", &[])])).expect("gc");
        assert_eq!(r.reclaimed_blobs, 1);
        assert_eq!(r.physical_after, 0);
        store.check_invariants(true).expect("invariants");
    }

    #[test]
    fn live_sets_must_cover_every_tenant_exactly() {
        let store = SharedStore::in_memory(2);
        let mut a = store.tenant("a").expect("tenant");
        store.tenant("b").expect("tenant");
        a.put(b"x").expect("put");
        let err = store.collect(&live(&[("a", &[0])])).expect_err("b missing");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = store
            .collect(&live(&[("a", &[0]), ("b", &[]), ("ghost", &[])]))
            .expect_err("ghost unregistered");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // Nothing was mutated by the failed attempts.
        assert_eq!(store.generation(), 0);
        assert_eq!(a.get(0).expect("get"), b"x");
    }

    #[test]
    fn file_backed_gc_commits_a_new_generation_and_reopens() {
        let dir = temp_dir("commit");
        {
            let store = SharedStore::create(&dir, 3).expect("create");
            let mut a = store.tenant("a").expect("tenant");
            for i in 0..20u32 {
                a.put(format!("payload {i} {}", "x".repeat(50)).as_bytes()).expect("put");
            }
            store.sync_all().expect("sync");
            let keep: Vec<u64> = (0..20).filter(|i| i % 3 == 0).collect();
            let r = store.collect(&live(&[("a", &keep)])).expect("gc");
            assert_eq!(r.live_blobs, 7);
            assert_eq!(r.reclaimed_blobs, 13);
            assert_eq!(store.generation(), 1);
            // Post-GC, the live store keeps serving and accepting writes.
            for i in keep {
                assert!(String::from_utf8(a.get(i).expect("get")).expect("utf8")
                    .starts_with(&format!("payload {i} ")));
            }
            a.put(b"after gc").expect("put");
            store.sync_all().expect("sync");
        }
        // Reopen from disk: generation 1 files, old generation swept.
        let store = SharedStore::open(&dir).expect("open");
        assert_eq!(store.generation(), 1);
        let a = store.tenant("a").expect("tenant");
        assert_eq!(a.blob_count(), 21);
        assert!(a.get(0).expect("get").starts_with(b"payload 0 "));
        assert_eq!(a.get(20).expect("get"), b"after gc");
        assert_eq!(a.get(1).expect_err("reclaimed").kind(), io::ErrorKind::NotFound);
        store.check_invariants(true).expect("invariants");
        let old_files: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".g0."))
            .collect();
        assert!(old_files.is_empty(), "old generation files were deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_budget_zero_aborts_before_any_commit() {
        let dir = temp_dir("crash0");
        let store = SharedStore::create(&dir, 2).expect("create");
        let mut a = store.tenant("a").expect("tenant");
        a.put(b"keep me").expect("put");
        a.put(b"reclaim me").expect("put");
        store.sync_all().expect("sync");
        store.set_crash_after_bytes(Some(0));
        let err = store.collect(&live(&[("a", &[0])])).expect_err("crash");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        // The store on disk is untouched: reopen sees generation 0, both
        // blobs intact.
        let reopened = SharedStore::open(&dir).expect("open");
        assert_eq!(reopened.generation(), 0);
        let a = reopened.tenant("a").expect("tenant");
        assert_eq!(a.get(0).expect("get"), b"keep me");
        assert_eq!(a.get(1).expect("get"), b"reclaim me");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gc_spans_cover_every_phase() {
        let store = SharedStore::in_memory(2);
        let trace = kishu_trace::Trace::enabled();
        store.attach_trace(&trace);
        let mut a = store.tenant("a").expect("tenant");
        a.put(b"x").expect("put");
        store.collect(&live(&[("a", &[])])).expect("gc");
        let names: Vec<String> = trace.spans().iter().map(|s| s.name.clone()).collect();
        for phase in ["gc.mark", "gc.sweep", "gc.commit"] {
            assert!(names.iter().any(|n| n == phase), "missing span {phase}: {names:?}");
        }
    }

    #[test]
    fn report_serializes() {
        let r = GcReport {
            live_blobs: 3,
            reclaimed_blobs: 2,
            reclaimed_payload_bytes: 100,
            physical_before: 500,
            physical_after: 300,
            generation: 4,
        };
        let j = r.to_json();
        assert_eq!(j.get("reclaimed_blobs").and_then(Json::as_i64), Some(2));
        Json::parse(&j.dump()).expect("round trips");
    }
}
