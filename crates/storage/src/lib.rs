//! # kishu-storage — checkpoint blob stores
//!
//! Kishu writes versioned co-variables into storage and reads them back on
//! checkout; the paper uses SQLite but notes "any storage mechanism can be
//! used in its place — even in-memory ones" (§6.1). This crate provides the
//! storage layer behind the Checkpoint Graph:
//!
//! * [`CheckpointStore`] — the blob-store interface every checkpointing
//!   mechanism (Kishu and all baselines) writes through, so size and time
//!   accounting are uniform across methods;
//! * [`MemoryStore`] — zero-I/O backend for unit tests and for isolating
//!   algorithmic costs in benchmarks;
//! * [`FileStore`] — a durable append-only log with length-prefixed,
//!   CRC-checked records and crash recovery on open (a torn tail write is
//!   detected and truncated away, records before it stay readable);
//! * [`FaultStore`] — a deterministic fault-injecting decorator over any
//!   store (transient/permanent errors, bit-flips, short writes, fsync
//!   lies), for testing graceful degradation in the layers above;
//! * [`BlobIndex`] — a content-addressed index over sealed payloads, used
//!   by the checkpoint write pipeline to turn repeat writes of unchanged
//!   bytes into metadata-only operations;
//! * [`BlobCache`] — the read-side twin: a bounded LRU cache of verified
//!   checkout payloads keyed by the same content keys, so undo/redo
//!   time-travel over the same states becomes memory-speed;
//! * [`SharedStore`] — the multi-tenant deployment: store-wide
//!   content-addressed dedup with refcounting, a blob log sharded by
//!   content-key prefix, and observationally private per-tenant
//!   [`TenantHandle`] views ([`shared`] module docs);
//! * [`gc`] — stop-the-world mark-and-sweep compaction over a shared
//!   store, committing new generations crash-consistently via an atomic
//!   manifest rename.

pub mod cache;
pub mod chunk;
pub mod crc32;
pub mod dedup;
pub mod fault_store;
pub mod file_store;
pub mod gc;
pub mod memory_store;
pub mod shared;

pub use cache::{BlobCache, CacheStats};
pub use chunk::{ChunkConfig, ChunkStats};
pub use dedup::{content_key, BlobIndex, ContentKey};
pub use gc::GcReport;
pub use fault_store::{
    tenant_scope, FaultKind, FaultLedger, FaultLedgerHandle, FaultOp, FaultPlan, FaultStore,
    InjectedFault,
};
pub use file_store::FileStore;
pub use memory_store::MemoryStore;
pub use shared::{default_shard_count, SharedStore, TenantHandle};

use std::io;

/// Handle to a stored blob. Dense, assigned in insertion order.
pub type BlobId = u64;

/// Aggregate storage accounting, used by the checkpoint-size experiments
/// (Fig 13, Fig 18, Fig 19).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of blobs stored.
    pub blobs: u64,
    /// Sum of payload bytes.
    pub payload_bytes: u64,
    /// Physical bytes including per-record framing (what disk usage is).
    pub physical_bytes: u64,
}

/// Physical attribution of one [`CheckpointStore::put_with_receipt`] call.
///
/// `bytes_written` is what the store *physically* appended for this put —
/// under chunking/compression that is the stored bytes of the chunks this
/// payload introduced (plus framing), not the logical payload length. A
/// fully deduplicated put reports `bytes_written == 0`. Stores without
/// chunk-level accounting (and tenant views, which must stay
/// observationally private) return the opaque receipt: logical length,
/// zero chunk counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PutReceipt {
    /// Id the payload resolved to.
    pub id: BlobId,
    /// Physical bytes this put appended to the store.
    pub bytes_written: u64,
    /// New chunks this put stored.
    pub chunks_written: u64,
    /// Chunks this put shared with already-stored data.
    pub chunks_deduped: u64,
    /// Bytes compression saved on the written portion (raw − stored).
    pub bytes_compressed: u64,
}

impl PutReceipt {
    /// The receipt a store without physical attribution reports: the put
    /// "wrote" its logical length and nothing chunked.
    pub fn opaque(id: BlobId, len: usize) -> Self {
        PutReceipt {
            id,
            bytes_written: len as u64,
            ..PutReceipt::default()
        }
    }
}

/// A blob store for checkpoint data.
///
/// All methods in the evaluation (Kishu, CRIU, DumpSession, ...) write
/// through this interface so their checkpoint sizes and write times are
/// measured identically.
pub trait CheckpointStore {
    /// Append a blob, returning its id.
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId>;

    /// Append a blob and report its physical attribution. Identical to
    /// [`CheckpointStore::put`] in every observable store effect (same id
    /// assignment, same bytes readable back, same error behavior) — the
    /// receipt is extra bookkeeping, never extra semantics. The default
    /// implementation wraps `put` with the opaque receipt.
    fn put_with_receipt(&mut self, bytes: &[u8]) -> io::Result<PutReceipt> {
        let id = self.put(bytes)?;
        Ok(PutReceipt::opaque(id, bytes.len()))
    }

    /// Read a blob back. Fails if the id is unknown or the record fails its
    /// integrity check.
    fn get(&self, id: BlobId) -> io::Result<Vec<u8>>;

    /// Number of blobs stored.
    fn blob_count(&self) -> u64;

    /// Accounting snapshot.
    fn stats(&self) -> StoreStats;

    /// Flush buffered writes to the durable medium (no-op for memory).
    fn sync(&mut self) -> io::Result<()>;

    /// Group-commit barrier: everything put so far must be readable by a
    /// store reopened after this call returns (modulo the medium's own
    /// durability, which [`CheckpointStore::sync`] governs). Stores that
    /// buffer puts (group commit) flush here; everything else is already
    /// ordered, so the default is a no-op. Called by the session at each
    /// checkpoint commit point.
    fn flush_barrier(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Chunk-level accounting, for stores running the v2 chunked
    /// representation. `None` means the store has no chunk layer (or it is
    /// switched off) — callers must not infer anything about logical
    /// contents from this, it is physical-representation observability
    /// only.
    fn chunk_stats(&self) -> Option<chunk::ChunkStats> {
        None
    }

    /// Adopt an observability handle: subsequent operations may record
    /// spans/metrics into it. Purely observational — attaching a trace
    /// (enabled or not) must never change any operation's outcome, and
    /// the default implementation ignores it entirely. Decorators forward
    /// to their inner store.
    fn attach_trace(&mut self, _trace: &kishu_trace::Trace) {}

    /// Best-effort integrity sweep: attempt `get` on every blob and report
    /// which ids are currently unreadable (I/O error or failed integrity
    /// check). The default implementation scans; backends with cheaper
    /// integrity metadata may override it.
    fn integrity_sweep(&self) -> IntegrityReport {
        let mut readable = 0u64;
        let mut unreadable = Vec::new();
        for id in 0..self.blob_count() {
            match self.get(id) {
                Ok(_) => readable += 1,
                Err(_) => unreadable.push(id),
            }
        }
        IntegrityReport { readable, unreadable }
    }
}

/// Result of [`CheckpointStore::integrity_sweep`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Blobs that read back successfully.
    pub readable: u64,
    /// Ids of blobs that failed to read.
    pub unreadable: Vec<BlobId>,
}

impl IntegrityReport {
    /// Whether every blob read back successfully.
    pub fn is_clean(&self) -> bool {
        self.unreadable.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn CheckpointStore) {
        let a = store.put(b"alpha").expect("put");
        let b = store.put(b"").expect("put empty");
        let c = store.put(&vec![7u8; 100_000]).expect("put large");
        assert_eq!(store.get(a).expect("get"), b"alpha");
        assert_eq!(store.get(b).expect("get"), b"");
        assert_eq!(store.get(c).expect("get").len(), 100_000);
        assert_eq!(store.blob_count(), 3);
        let stats = store.stats();
        assert_eq!(stats.blobs, 3);
        assert_eq!(stats.payload_bytes, 5 + 100_000);
        // Physical bytes are representation-dependent: framing adds,
        // chunk dedup and compression subtract. Only positivity is a
        // contract here.
        assert!(stats.physical_bytes > 0);
        assert!(store.get(999).is_err());
    }

    #[test]
    fn memory_store_contract() {
        let mut s = MemoryStore::new();
        exercise(&mut s);
    }

    #[test]
    fn file_store_contract() {
        let dir = std::env::temp_dir().join(format!("kishu-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("contract.log");
        let _ = std::fs::remove_file(&path);
        let mut s = FileStore::create(&path).expect("create");
        exercise(&mut s);
        std::fs::remove_file(&path).ok();
    }
}
