//! In-memory blob store.

use std::io;

use crate::chunk::{decode_chunk, ChunkConfig, ChunkLedger, ChunkStats};
use crate::{BlobId, CheckpointStore, PutReceipt, StoreStats};

/// How one logical blob is represented physically.
#[derive(Debug)]
enum BlobRepr {
    /// Whole payload held verbatim (chunking off, or payload below the
    /// minimum chunk size).
    Raw(Vec<u8>),
    /// Payload split into stored-form chunks; `ords` index the shared
    /// chunk table in payload order.
    Chunked { raw_len: u64, ords: Vec<u32> },
}

/// Blob store backed by process memory. The fastest possible backend — the
/// paper's §6.1 notes users can pick one "to maximize checkpointing/checkout
/// efficiency" — and the default for unit tests and algorithm-isolating
/// benchmarks.
///
/// Runs the storage-engine-v2 representation (content-defined chunking +
/// per-chunk compression) when [`ChunkConfig`] enables it; the logical view
/// (ids, payloads, logical stats) is identical either way.
#[derive(Debug)]
pub struct MemoryStore {
    blobs: Vec<BlobRepr>,
    /// Stored-form chunks shared across blobs, indexed by ord.
    chunks: Vec<Vec<u8>>,
    ledger: ChunkLedger,
    cfg: ChunkConfig,
    payload_bytes: u64,
    physical_bytes: u64,
}

impl Default for MemoryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryStore {
    /// Empty store with the environment's chunking configuration.
    pub fn new() -> Self {
        Self::with_config(ChunkConfig::from_env())
    }

    /// Empty store with an explicit chunking configuration (differential
    /// tests pin both arms programmatically; env vars are process-global).
    pub fn with_config(cfg: ChunkConfig) -> Self {
        MemoryStore {
            blobs: Vec::new(),
            chunks: Vec::new(),
            ledger: ChunkLedger::new(),
            cfg,
            payload_bytes: 0,
            physical_bytes: 0,
        }
    }
}

impl CheckpointStore for MemoryStore {
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId> {
        self.put_with_receipt(bytes).map(|r| r.id)
    }

    fn put_with_receipt(&mut self, bytes: &[u8]) -> io::Result<PutReceipt> {
        let id = self.blobs.len() as BlobId;
        self.payload_bytes += bytes.len() as u64;
        if !self.cfg.chunks_payload(bytes.len()) {
            self.physical_bytes += bytes.len() as u64;
            self.blobs.push(BlobRepr::Raw(bytes.to_vec()));
            return Ok(PutReceipt::opaque(id, bytes.len()));
        }
        let chunks = &mut self.chunks;
        let (ords, r) = self.ledger.ingest(bytes, &self.cfg, |stored| {
            chunks.push(stored.to_vec());
            Ok((chunks.len() - 1) as u32)
        })?;
        self.physical_bytes += r.stored_bytes_written;
        self.blobs.push(BlobRepr::Chunked {
            raw_len: bytes.len() as u64,
            ords,
        });
        Ok(PutReceipt {
            id,
            bytes_written: r.stored_bytes_written,
            chunks_written: r.chunks_written,
            chunks_deduped: r.chunks_deduped,
            bytes_compressed: r.raw_bytes_written.saturating_sub(r.stored_bytes_written),
        })
    }

    fn get(&self, id: BlobId) -> io::Result<Vec<u8>> {
        let repr = self
            .blobs
            .get(id as usize)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {id}")))?;
        match repr {
            BlobRepr::Raw(bytes) => Ok(bytes.clone()),
            BlobRepr::Chunked { raw_len, ords } => {
                let mut out = Vec::with_capacity(*raw_len as usize);
                for &ord in ords {
                    let stored = self.chunks.get(ord as usize).ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("blob {id} references missing chunk {ord}"),
                        )
                    })?;
                    out.extend_from_slice(&decode_chunk(stored)?);
                }
                if out.len() as u64 != *raw_len {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("blob {id} reassembled to the wrong length"),
                    ));
                }
                Ok(out)
            }
        }
    }

    fn blob_count(&self) -> u64 {
        self.blobs.len() as u64
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            blobs: self.blobs.len() as u64,
            payload_bytes: self.payload_bytes,
            physical_bytes: self.physical_bytes,
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn chunk_stats(&self) -> Option<ChunkStats> {
        self.cfg.enabled.then(|| self.ledger.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut s = MemoryStore::new();
        assert_eq!(s.put(b"a").expect("put"), 0);
        assert_eq!(s.put(b"b").expect("put"), 1);
        assert_eq!(s.get(1).expect("get"), b"b");
    }

    #[test]
    fn missing_blob_is_not_found() {
        let s = MemoryStore::new();
        let err = s.get(3).expect_err("missing");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn chunked_blobs_roundtrip_and_dedup() {
        let mut s = MemoryStore::with_config(ChunkConfig::default());
        let big: Vec<u8> = (0..200_000u32).map(|i| (i % 13) as u8 ^ (i / 999) as u8).collect();
        let r1 = s.put_with_receipt(&big).expect("put");
        assert!(r1.chunks_written > 1, "large payload must chunk");
        assert_eq!(s.get(r1.id).expect("get"), big);

        // A small mutation shares almost every chunk with the original.
        let mut edited = big.clone();
        edited[100_000] ^= 0x55;
        let r2 = s.put_with_receipt(&edited).expect("put");
        assert!(r2.chunks_written <= 3, "wrote {} chunks", r2.chunks_written);
        assert!(r2.chunks_deduped > r2.chunks_written);
        assert!(r2.bytes_written < big.len() as u64 / 4);
        assert_eq!(s.get(r2.id).expect("get"), edited);

        // Logical stats are representation-independent; physical shrinks.
        let st = s.stats();
        assert_eq!(st.blobs, 2);
        assert_eq!(st.payload_bytes, 2 * big.len() as u64);
        assert!(st.physical_bytes < st.payload_bytes);
        let cs = s.chunk_stats().expect("chunking on");
        assert!(cs.chunk_refs > cs.chunks, "dedup must have fired");
    }

    #[test]
    fn disabled_config_reports_no_chunk_stats() {
        let mut s = MemoryStore::with_config(ChunkConfig::disabled());
        let big = vec![3u8; 100_000];
        let r = s.put_with_receipt(&big).expect("put");
        assert_eq!(r.bytes_written, big.len() as u64, "v1 writes logical bytes");
        assert_eq!(r.chunks_written, 0);
        assert_eq!(s.chunk_stats(), None);
        assert_eq!(s.stats().physical_bytes, big.len() as u64);
    }
}
