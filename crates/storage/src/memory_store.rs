//! In-memory blob store.

use std::io;

use crate::{BlobId, CheckpointStore, StoreStats};

/// Blob store backed by process memory. The fastest possible backend — the
/// paper's §6.1 notes users can pick one "to maximize checkpointing/checkout
/// efficiency" — and the default for unit tests and algorithm-isolating
/// benchmarks.
#[derive(Debug, Default)]
pub struct MemoryStore {
    blobs: Vec<Vec<u8>>,
    payload_bytes: u64,
}

impl MemoryStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemoryStore {
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId> {
        let id = self.blobs.len() as BlobId;
        self.payload_bytes += bytes.len() as u64;
        self.blobs.push(bytes.to_vec());
        Ok(id)
    }

    fn get(&self, id: BlobId) -> io::Result<Vec<u8>> {
        self.blobs
            .get(id as usize)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no blob {id}")))
    }

    fn blob_count(&self) -> u64 {
        self.blobs.len() as u64
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            blobs: self.blobs.len() as u64,
            payload_bytes: self.payload_bytes,
            physical_bytes: self.payload_bytes,
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut s = MemoryStore::new();
        assert_eq!(s.put(b"a").expect("put"), 0);
        assert_eq!(s.put(b"b").expect("put"), 1);
        assert_eq!(s.get(1).expect("get"), b"b");
    }

    #[test]
    fn missing_blob_is_not_found() {
        let s = MemoryStore::new();
        let err = s.get(3).expect_err("missing");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
