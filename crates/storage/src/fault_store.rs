//! Deterministic fault injection for checkpoint stores.
//!
//! [`FaultStore`] decorates any [`CheckpointStore`] and, driven by a seeded
//! [`kishu_testkit::rng::Rng`] and a [`FaultPlan`], injects the failure
//! modes a real storage backend exhibits under duress:
//!
//! * **transient I/O errors** (`ErrorKind::Interrupted`) on `put`/`get`/
//!   `sync` — a retry may succeed;
//! * **permanent I/O errors** (`ErrorKind::Other`) — for `get`, the blob is
//!   marked dead and every later read of it fails too;
//! * **payload bit-flips** on `get` — the caller receives bytes with one
//!   bit flipped, exercising its integrity checking / fallback paths;
//! * **short writes** on `put` — only a prefix of the payload reaches the
//!   inner store before the simulated tear, and the caller sees an error;
//! * **fsync lies** on `sync` — success is reported without the inner
//!   store ever being synced (the classic lying-disk failure).
//!
//! Every probabilistic decision is a **pure function of `(seed, scope, op
//! kind, operation key, per-key attempt counter)`** — for `put` the key is
//! the XXH64 of the payload, for `get` the blob id, for `sync` a constant.
//! No shared RNG stream is consumed in operation order, so the same plan
//! injects the same faults *regardless of how concurrent callers interleave
//! their operations*: the parallel checkpoint pipeline and the serial
//! oracle see identical fault sequences, and a failing run replays exactly
//! from its seed. (Scheduled one-shot faults remain pinned to per-op
//! invocation indices; they are only deterministic while operations issue
//! in a deterministic order, which the session's single writer guarantees.)
//! Each injected fault is appended to a [`FaultLedger`] so tests can assert
//! both that faults actually fired and that the layers above degraded
//! gracefully (§5.3's fallback recomputation) instead of corrupting state.
//!
//! ## Multi-tenant scoping
//!
//! When several sessions share one faulty store (the [`crate::SharedStore`]
//! deployment), a single `(op, key)` attempt-counter space would let one
//! tenant's retries advance another tenant's draws — tenant A retrying blob
//! 3 would perturb tenant B's fault sequence for *its* blob 3, breaking the
//! solo-vs-interleaved isolation invariant. Every piece of fault state is
//! therefore keyed by a **scope**: attempt counters, per-op invocation
//! indices, dead blobs/ops, and the draws themselves. [`FaultStore::twin`]
//! derives a second entry point over the same shared fault state with its
//! own scope (one per tenant, via [`tenant_scope`]), and
//! [`FaultLedgerHandle::snapshot_scoped`] projects the shared ledger down
//! to one tenant's view. Because a tenant's shard assignment is a pure
//! function of `(tenant, op key)` — puts shard by content key, gets by the
//! tenant-local blob id — scoping draws by `(tenant, op key)` is equivalent
//! to keying them by `(tenant, shard, op key)`. Scope `0` (the default) is
//! bit-for-bit the historical single-tenant behavior.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::{Arc, Mutex};

use kishu_testkit::hash::xxh64;
use kishu_testkit::json::Json;
use kishu_testkit::rng::splitmix64;
use kishu_trace::Trace;

use crate::{BlobId, CheckpointStore, StoreStats};

/// Which store operation a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOp {
    /// [`CheckpointStore::put`]
    Put,
    /// [`CheckpointStore::get`]
    Get,
    /// [`CheckpointStore::sync`]
    Sync,
}

/// The failure mode injected by one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Retryable I/O error (`ErrorKind::Interrupted`); the inner store is
    /// untouched.
    Transient,
    /// Non-retryable I/O error (`ErrorKind::Other`). On `get`, the blob is
    /// marked dead: all later reads of the same id fail too.
    Permanent,
    /// One random payload bit flipped in the bytes returned by `get`.
    BitFlip,
    /// `put` writes only a random proper prefix to the inner store, then
    /// errors — the torn-write shape a crash mid-append produces.
    ShortWrite,
    /// `sync` reports success without syncing the inner store.
    FsyncLie,
}

/// A one-shot fault scheduled at a specific operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Operation the fault fires on.
    pub op: FaultOp,
    /// Fires on the `at`-th invocation of `op` (0-based, counted per op).
    pub at: u64,
    /// Failure mode to inject.
    pub kind: FaultKind,
}

/// Per-operation fault probabilities plus scheduled one-shot faults.
///
/// Probabilities are evaluated independently per call in a fixed order
/// (transient first, then the op-specific corruption mode); a scheduled
/// fault at the call's index takes precedence over both.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability of a transient error on `put`.
    pub put_transient_p: f64,
    /// Probability of a transient error on `get`.
    pub get_transient_p: f64,
    /// Probability of a transient error on `sync`.
    pub sync_transient_p: f64,
    /// Probability of a short write on `put` (after the transient check).
    pub short_write_p: f64,
    /// Probability of a payload bit-flip on `get` (after the transient
    /// check; applied to the successfully read bytes).
    pub bit_flip_p: f64,
    /// Probability `sync` lies (after the transient check).
    pub fsync_lie_p: f64,
    /// One-shot faults pinned to operation indices.
    pub scheduled: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// Plan with no faults at all (the wrapper becomes a pure pass-through
    /// that still counts operations).
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan injecting transient errors on `put`/`get`/`sync`, each with
    /// probability `p`, and nothing else.
    pub fn transient(p: f64) -> Self {
        FaultPlan {
            put_transient_p: p,
            get_transient_p: p,
            sync_transient_p: p,
            ..Self::default()
        }
    }

    /// Builder: add a scheduled one-shot fault.
    pub fn schedule(mut self, op: FaultOp, at: u64, kind: FaultKind) -> Self {
        self.scheduled.push(ScheduledFault { op, at, kind });
        self
    }
}

/// One injected fault, as recorded in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Operation the fault fired on.
    pub op: FaultOp,
    /// Failure mode injected.
    pub kind: FaultKind,
    /// Per-`(scope, op)` invocation index (0-based) at which it fired.
    pub op_index: u64,
    /// Blob involved, when the op names one (`get`, and `put`'s assigned id
    /// for short writes that reached the inner store).
    pub blob: Option<BlobId>,
    /// The operation key the decision was drawn against (payload XXH64 for
    /// `put`, blob id for `get`, 0 for `sync`) — with `scope` and `attempt`,
    /// enough to replay the exact [`keyed_draw`] without a debugger.
    pub key: u64,
    /// Per-`(scope, op, key)` attempt number (0-based) the draw used.
    pub attempt: u64,
    /// The tenant scope the operation ran under (0 for a single-tenant
    /// store; [`tenant_scope`] values for shared-store tenants).
    pub scope: u64,
}

impl InjectedFault {
    /// JSON form of the ledger entry (keys rendered as hex so the full
    /// `u64` key space survives JSON's i64 integers).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("op", Json::Str(format!("{:?}", self.op))),
            ("kind", Json::Str(format!("{:?}", self.kind))),
            ("op_index", Json::Int(self.op_index as i64)),
            ("key", Json::Str(format!("{:#018x}", self.key))),
            ("attempt", Json::Int(self.attempt as i64)),
            ("scope", Json::Str(format!("{:#018x}", self.scope))),
            (
                "blob",
                match self.blob {
                    Some(b) => Json::Int(b as i64),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Record of every fault injected plus how many operations ran, for test
/// assertions ("faults actually fired", "N of M gets were corrupted",
/// "the parallel pipeline's ledger is identical to the serial oracle's").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLedger {
    /// Every injected fault, in injection order.
    pub injected: Vec<InjectedFault>,
    /// Total `put` calls observed (faulted or not).
    pub puts: u64,
    /// Total `get` calls observed.
    pub gets: u64,
    /// Total `sync` calls observed.
    pub syncs: u64,
}

impl FaultLedger {
    /// Number of injected faults of `kind`.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.injected.iter().filter(|f| f.kind == kind).count()
    }

    /// Number of injected faults on `op`.
    pub fn count_op(&self, op: FaultOp) -> usize {
        self.injected.iter().filter(|f| f.op == op).count()
    }

    /// Total injected faults.
    pub fn total(&self) -> usize {
        self.injected.len()
    }

    /// JSON snapshot: operation counts plus every entry via
    /// [`InjectedFault::to_json`].
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("puts", Json::Int(self.puts as i64)),
            ("gets", Json::Int(self.gets as i64)),
            ("syncs", Json::Int(self.syncs as i64)),
            (
                "injected",
                Json::Array(self.injected.iter().map(InjectedFault::to_json).collect()),
            ),
        ])
    }
}

/// Mutable wrapper state behind one lock: `get` takes `&self`, so the
/// ledger and counters need interior mutability (Mutex to match the store's
/// Send posture rather than RefCell).
#[derive(Debug)]
struct FaultState {
    ledger: FaultLedger,
    /// Per-`(scope, op, key)` attempt counters: the `attempt` input of the
    /// keyed fault decision, so a retry of the same operation (same payload,
    /// same blob, same tenant) draws fresh randomness while staying
    /// interleaving-independent — and one tenant's retries never advance
    /// another tenant's counters.
    attempts: BTreeMap<(u64, FaultOp, u64), u64>,
    /// Per-`(scope, op)` invocation counters: the `op_index` that scheduled
    /// one-shot faults fire against, counted per tenant so an interleaved
    /// neighbor cannot shift when a scheduled fault lands.
    op_counts: BTreeMap<(u64, FaultOp), u64>,
    /// `(scope, blob)` pairs hit by a permanent `get` fault: dead forever.
    dead_blobs: BTreeSet<(u64, BlobId)>,
    /// `(scope, op)` pairs permanently failed (permanent `put`/`sync` fault).
    dead_ops: BTreeSet<(u64, FaultOp)>,
    /// Set by a fsync lie; cleared by the next real sync. Deliberately
    /// global: durability is a property of the shared disk, not of any one
    /// tenant's view. Exposed so crash simulations know whether "durable"
    /// data actually was.
    sync_lied: bool,
}

/// A [`CheckpointStore`] decorator injecting deterministic faults per a
/// [`FaultPlan`]. See the module docs for the failure-mode catalogue.
pub struct FaultStore {
    inner: Box<dyn CheckpointStore>,
    plan: FaultPlan,
    seed: u64,
    /// Tenant scope for every decision this entry point makes; 0 is the
    /// single-tenant default and leaves all draws bit-identical to the
    /// pre-scoping behavior.
    scope: u64,
    state: Arc<Mutex<FaultState>>,
    /// Observability only: spans annotate each op's key/attempt and, when a
    /// fault fires, its kind and ledger index. Never consulted for any
    /// decision (the keyed draws above are the whole decision procedure),
    /// so attaching a trace cannot change behavior.
    trace: Trace,
}

/// Cloneable handle onto a [`FaultStore`]'s ledger, for observing injected
/// faults after the store has been boxed away into a session
/// (`KishuSession::new` takes ownership of its `Box<dyn CheckpointStore>`).
#[derive(Clone)]
pub struct FaultLedgerHandle(Arc<Mutex<FaultState>>);

impl FaultLedgerHandle {
    /// Snapshot of the ledger as of now.
    pub fn snapshot(&self) -> FaultLedger {
        self.0.lock().expect("fault state poisoned").ledger.clone()
    }

    /// Snapshot of one tenant scope's view of the ledger: its injected
    /// faults (in injection order) and its own operation counts. A tenant
    /// running interleaved with others sees exactly the ledger it would
    /// have produced alone.
    pub fn snapshot_scoped(&self, scope: u64) -> FaultLedger {
        let st = self.0.lock().expect("fault state poisoned");
        FaultLedger {
            injected: st.ledger.injected.iter().filter(|f| f.scope == scope).copied().collect(),
            puts: st.op_counts.get(&(scope, FaultOp::Put)).copied().unwrap_or(0),
            gets: st.op_counts.get(&(scope, FaultOp::Get)).copied().unwrap_or(0),
            syncs: st.op_counts.get(&(scope, FaultOp::Sync)).copied().unwrap_or(0),
        }
    }

    /// Total faults injected so far.
    pub fn total(&self) -> usize {
        self.0.lock().expect("fault state poisoned").ledger.total()
    }
}

impl std::fmt::Debug for FaultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("fault state poisoned");
        f.debug_struct("FaultStore")
            .field("plan", &self.plan)
            .field("injected", &st.ledger.total())
            .finish()
    }
}

impl FaultStore {
    /// Wrap `inner`, injecting faults per `plan`, with every random
    /// decision derived from `seed`. Scope 0 (single-tenant).
    pub fn new(inner: Box<dyn CheckpointStore>, plan: FaultPlan, seed: u64) -> Self {
        Self::scoped(inner, plan, seed, 0)
    }

    /// Like [`FaultStore::new`], but every decision runs under tenant
    /// `scope`. A solo run under scope `s` draws identically to the same
    /// tenant running under scope `s` on a shared store via [`twin`]s.
    ///
    /// [`twin`]: FaultStore::twin
    pub fn scoped(inner: Box<dyn CheckpointStore>, plan: FaultPlan, seed: u64, scope: u64) -> Self {
        FaultStore {
            inner,
            plan,
            seed,
            scope,
            state: Arc::new(Mutex::new(FaultState {
                ledger: FaultLedger::default(),
                attempts: BTreeMap::new(),
                op_counts: BTreeMap::new(),
                dead_blobs: BTreeSet::new(),
                dead_ops: BTreeSet::new(),
                sync_lied: false,
            })),
            trace: Trace::disabled(),
        }
    }

    /// A second entry point over the *same* fault state (shared ledger,
    /// counters, dead sets) with its own tenant scope, wrapping `inner` —
    /// how a shared deployment gives each tenant a faulty view of one
    /// store. `inner` is typically that tenant's view of the same shared
    /// store the twin's sibling wraps.
    pub fn twin(&self, inner: Box<dyn CheckpointStore>, scope: u64) -> Self {
        FaultStore {
            inner,
            plan: self.plan.clone(),
            seed: self.seed,
            scope,
            state: Arc::clone(&self.state),
            trace: self.trace.clone(),
        }
    }

    /// The tenant scope this entry point decides under.
    pub fn scope(&self) -> u64 {
        self.scope
    }

    /// Snapshot of the injected-fault ledger.
    pub fn ledger(&self) -> FaultLedger {
        self.state.lock().expect("fault state poisoned").ledger.clone()
    }

    /// A cloneable handle onto the ledger that stays valid after this store
    /// is boxed into a session.
    pub fn ledger_handle(&self) -> FaultLedgerHandle {
        FaultLedgerHandle(Arc::clone(&self.state))
    }

    /// Whether a fsync lie has swallowed a `sync` since the last real one.
    pub fn sync_lied(&self) -> bool {
        self.state.lock().expect("fault state poisoned").sync_lied
    }

    /// The wrapped store (e.g. to inspect true stats underneath the faults).
    pub fn inner(&self) -> &dyn CheckpointStore {
        self.inner.as_ref()
    }

    /// Unwrap, discarding the fault layer.
    pub fn into_inner(self) -> Box<dyn CheckpointStore> {
        self.inner
    }

    /// The scheduled fault for this `(op, index)`, if any.
    fn scheduled(&self, op: FaultOp, index: u64) -> Option<FaultKind> {
        self.plan
            .scheduled
            .iter()
            .find(|s| s.op == op && s.at == index)
            .map(|s| s.kind)
    }

    /// Take this call's per-`(scope, op)` index and fault decision.
    /// Probabilistic draws are a pure function of `(seed, scope, op, key,
    /// attempt)` — see [`keyed_draw`] — so they are independent of
    /// operation interleaving, within a tenant and across tenants. A
    /// scheduled fault beats the probabilistic draws; a permanently failed
    /// op/blob beats both.
    fn decide(&self, op: FaultOp, key: u64) -> Decision {
        let mut st = self.state.lock().expect("fault state poisoned");
        match op {
            FaultOp::Put => st.ledger.puts += 1,
            FaultOp::Get => st.ledger.gets += 1,
            FaultOp::Sync => st.ledger.syncs += 1,
        }
        let index = {
            let counter = st.op_counts.entry((self.scope, op)).or_insert(0);
            let i = *counter;
            *counter += 1;
            i
        };
        let (dead, transient_p, corrupt_p, corrupt_kind) = match op {
            FaultOp::Put => (
                st.dead_ops.contains(&(self.scope, FaultOp::Put)),
                self.plan.put_transient_p,
                self.plan.short_write_p,
                FaultKind::ShortWrite,
            ),
            FaultOp::Get => (
                st.dead_blobs.contains(&(self.scope, key)),
                self.plan.get_transient_p,
                self.plan.bit_flip_p,
                FaultKind::BitFlip,
            ),
            FaultOp::Sync => (
                st.dead_ops.contains(&(self.scope, FaultOp::Sync)),
                self.plan.sync_transient_p,
                self.plan.fsync_lie_p,
                FaultKind::FsyncLie,
            ),
        };
        let attempt = {
            let counter = st.attempts.entry((self.scope, op, key)).or_insert(0);
            let a = *counter;
            *counter += 1;
            a
        };
        let seed = scoped_seed(self.seed, self.scope);
        let kind = if dead {
            Some(FaultKind::Permanent)
        } else if let Some(k) = self.scheduled(op, index) {
            Some(k)
        } else if unit(keyed_draw(seed, op, key, attempt, Lane::Transient)) < transient_p {
            Some(FaultKind::Transient)
        } else if unit(keyed_draw(seed, op, key, attempt, Lane::Corrupt)) < corrupt_p {
            Some(corrupt_kind)
        } else {
            None
        };
        // Positional entropy for bit-flips / short-write cuts, from its own
        // lane so it never perturbs the fire/don't-fire decisions.
        let entropy = keyed_draw(seed, op, key, attempt, Lane::Position);
        Decision { index, key, attempt, kind, entropy }
    }

    /// Open the per-op observability span, annotated with the decision's
    /// replay coordinates. A no-op guard when no trace is attached.
    fn op_span(&self, name: &str, d: &Decision) -> kishu_trace::SpanGuard {
        let mut sp = self.trace.span(name);
        sp.arg("op_index", d.index);
        sp.arg("key", format!("{:#018x}", d.key));
        sp.arg("attempt", d.attempt);
        if self.scope != 0 {
            sp.arg("scope", format!("{:#018x}", self.scope));
        }
        sp
    }

    /// Append one injected fault to the ledger and return its entry index
    /// (what faulted ops' spans link to).
    fn record(&self, kind: FaultKind, d: &Decision, op: FaultOp, blob: Option<BlobId>) -> usize {
        let mut st = self.state.lock().expect("fault state poisoned");
        st.ledger.injected.push(InjectedFault {
            op,
            kind,
            op_index: d.index,
            blob,
            key: d.key,
            attempt: d.attempt,
            scope: self.scope,
        });
        st.ledger.injected.len() - 1
    }

    /// Annotate a faulted op's span with the failure mode and the ledger
    /// entry it was recorded as.
    fn fault_args(sp: &mut kishu_trace::SpanGuard, kind: FaultKind, ledger_index: usize) {
        sp.arg("fault", format!("{kind:?}"));
        sp.arg("ledger", ledger_index);
    }

    fn transient_err(op: FaultOp) -> io::Error {
        io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient {op:?} fault"),
        )
    }

    fn permanent_err(op: FaultOp) -> io::Error {
        io::Error::other(format!("injected permanent {op:?} fault"))
    }
}

/// One call's fault decision.
struct Decision {
    index: u64,
    /// The operation key the draws used (payload hash / blob id / 0).
    key: u64,
    /// The per-`(op, key)` attempt number the draws used.
    attempt: u64,
    kind: Option<FaultKind>,
    /// Keyed positional randomness for the op's corruption mode (bit index
    /// for a flip, cut point for a short write).
    entropy: u64,
}

/// Independent randomness lanes within one `(seed, op, key, attempt)`
/// point, so e.g. the short-write cut position never perturbs whether a
/// transient fault fires.
#[derive(Debug, Clone, Copy)]
enum Lane {
    Transient = 0,
    Corrupt = 1,
    Position = 2,
}

/// Fold a tenant scope into the plan seed. The identity for scope 0, so
/// the single-tenant draw sequence is bit-for-bit unchanged; any other
/// scope lands the tenant in its own statistically independent draw space.
fn scoped_seed(seed: u64, scope: u64) -> u64 {
    seed ^ scope.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A deterministic tenant scope from a tenant name, for wiring
/// [`FaultStore::scoped`]/[`FaultStore::twin`] to named shared-store
/// tenants. Never 0, so a named tenant cannot collide with the
/// single-tenant legacy scope.
pub fn tenant_scope(name: &str) -> u64 {
    xxh64(name.as_bytes(), 0x07E4_A475_C09E) | 1
}

/// The keyed fault draw: a pure function of its five inputs, with no
/// shared stream — concurrent callers in any interleaving observe the
/// same decisions for the same logical operations.
fn keyed_draw(seed: u64, op: FaultOp, key: u64, attempt: u64, lane: Lane) -> u64 {
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let mut out = 0u64;
    for word in [1 + op as u64, key, attempt, lane as u64] {
        state ^= word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        out = splitmix64(&mut state);
    }
    out
}

/// Map a draw onto `[0, 1)` with 53 bits of precision (the standard
/// u64-to-double construction).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seed for hashing `put` payloads into operation keys; distinct from the
/// dedup index's content seed so the two key spaces are unrelated.
const PUT_KEY_SEED: u64 = 0xFA0_175_EED;

impl CheckpointStore for FaultStore {
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId> {
        self.put_with_receipt(bytes).map(|r| r.id)
    }

    // The injection logic lives here so `put` and `put_with_receipt` share
    // one decision point: the same payload draws the same fault under
    // either entry point, and a receipt-requesting caller (the session's
    // attribution path) perturbs nothing.
    fn put_with_receipt(&mut self, bytes: &[u8]) -> io::Result<crate::PutReceipt> {
        let d = self.decide(FaultOp::Put, xxh64(bytes, PUT_KEY_SEED));
        let mut sp = self.op_span("fault.put", &d);
        sp.arg("bytes", bytes.len());
        match d.kind {
            None => self.inner.put_with_receipt(bytes),
            Some(kind @ FaultKind::Transient) => {
                let idx = self.record(kind, &d, FaultOp::Put, None);
                Self::fault_args(&mut sp, kind, idx);
                Err(Self::transient_err(FaultOp::Put))
            }
            Some(kind @ FaultKind::ShortWrite) => {
                // A proper prefix lands in the inner store (the torn bytes a
                // crashed append leaves behind), then the caller sees the
                // error — it must never reference the garbage id.
                let cut = if bytes.is_empty() { 0 } else { d.entropy as usize % bytes.len() };
                let blob = self.inner.put(&bytes[..cut]).ok();
                let idx = self.record(kind, &d, FaultOp::Put, blob);
                Self::fault_args(&mut sp, kind, idx);
                Err(Self::permanent_err(FaultOp::Put))
            }
            // Permanent (and any inapplicable scheduled kind): a hard,
            // non-retryable error; `Permanent` also fails every later put.
            Some(kind) => {
                if kind == FaultKind::Permanent {
                    self.state
                        .lock()
                        .expect("fault state poisoned")
                        .dead_ops
                        .insert((self.scope, FaultOp::Put));
                }
                let idx = self.record(kind, &d, FaultOp::Put, None);
                Self::fault_args(&mut sp, kind, idx);
                Err(Self::permanent_err(FaultOp::Put))
            }
        }
    }

    fn get(&self, id: BlobId) -> io::Result<Vec<u8>> {
        let d = self.decide(FaultOp::Get, id);
        let mut sp = self.op_span("fault.get", &d);
        sp.arg("blob", id);
        match d.kind {
            None => self.inner.get(id),
            Some(kind @ FaultKind::Transient) => {
                let idx = self.record(kind, &d, FaultOp::Get, Some(id));
                Self::fault_args(&mut sp, kind, idx);
                Err(Self::transient_err(FaultOp::Get))
            }
            Some(kind @ FaultKind::BitFlip) => {
                let mut bytes = self.inner.get(id)?;
                if !bytes.is_empty() {
                    let bit = d.entropy as usize % (bytes.len() * 8);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                let idx = self.record(kind, &d, FaultOp::Get, Some(id));
                Self::fault_args(&mut sp, kind, idx);
                Ok(bytes)
            }
            Some(kind) => {
                if kind == FaultKind::Permanent {
                    self.state
                        .lock()
                        .expect("fault state poisoned")
                        .dead_blobs
                        .insert((self.scope, id));
                }
                let idx = self.record(kind, &d, FaultOp::Get, Some(id));
                Self::fault_args(&mut sp, kind, idx);
                Err(Self::permanent_err(FaultOp::Get))
            }
        }
    }

    fn blob_count(&self) -> u64 {
        self.inner.blob_count()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn sync(&mut self) -> io::Result<()> {
        let d = self.decide(FaultOp::Sync, 0);
        let mut sp = self.op_span("fault.sync", &d);
        match d.kind {
            None => {
                let r = self.inner.sync();
                if r.is_ok() {
                    self.state.lock().expect("fault state poisoned").sync_lied = false;
                }
                r
            }
            Some(kind @ FaultKind::Transient) => {
                let idx = self.record(kind, &d, FaultOp::Sync, None);
                Self::fault_args(&mut sp, kind, idx);
                Err(Self::transient_err(FaultOp::Sync))
            }
            Some(kind @ FaultKind::FsyncLie) => {
                self.state.lock().expect("fault state poisoned").sync_lied = true;
                let idx = self.record(kind, &d, FaultOp::Sync, None);
                Self::fault_args(&mut sp, kind, idx);
                Ok(())
            }
            Some(kind) => {
                if kind == FaultKind::Permanent {
                    self.state
                        .lock()
                        .expect("fault state poisoned")
                        .dead_ops
                        .insert((self.scope, FaultOp::Sync));
                }
                let idx = self.record(kind, &d, FaultOp::Sync, None);
                Self::fault_args(&mut sp, kind, idx);
                Err(Self::permanent_err(FaultOp::Sync))
            }
        }
    }

    fn flush_barrier(&mut self) -> io::Result<()> {
        // No fault draw: the barrier is an ordering point, not a media
        // operation — media failures inject at `put`/`sync`, and an inner
        // store's own flush errors still surface through this forward.
        // Keeping it draw-free also keeps fault ledgers identical whether
        // or not a store buffers (group commit on vs off).
        self.inner.flush_barrier()
    }

    fn chunk_stats(&self) -> Option<crate::chunk::ChunkStats> {
        self.inner.chunk_stats()
    }

    fn attach_trace(&mut self, trace: &Trace) {
        self.trace = trace.clone();
        self.inner.attach_trace(trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    fn faulty(plan: FaultPlan, seed: u64) -> FaultStore {
        FaultStore::new(Box::new(MemoryStore::new()), plan, seed)
    }

    #[test]
    fn no_faults_is_a_pure_pass_through() {
        let mut s = faulty(FaultPlan::none(), 1);
        let a = s.put(b"alpha").expect("put");
        assert_eq!(s.get(a).expect("get"), b"alpha");
        s.sync().expect("sync");
        assert_eq!(s.blob_count(), 1);
        let ledger = s.ledger();
        assert_eq!(ledger.total(), 0);
        assert_eq!((ledger.puts, ledger.gets, ledger.syncs), (1, 1, 1));
    }

    #[test]
    fn same_seed_injects_the_same_faults() {
        let run = |seed: u64| {
            let mut s = faulty(FaultPlan::transient(0.3), seed);
            let mut outcomes = Vec::new();
            for i in 0..50u64 {
                outcomes.push(s.put(&[i as u8; 16]).is_ok());
                outcomes.push(s.get(i % s.blob_count().max(1)).is_ok());
                outcomes.push(s.sync().is_ok());
            }
            (outcomes, s.ledger().injected)
        };
        assert_eq!(run(42), run(42), "deterministic from the seed");
        assert_ne!(run(42).1, run(43).1, "different seeds, different faults");
    }

    #[test]
    fn probabilistic_faults_are_independent_of_operation_interleaving() {
        // Issue the same logical puts in two different orders: each payload
        // must see the same fault outcome either way, because the decision
        // is keyed on (seed, op, payload hash, attempt), not on a shared
        // RNG stream consumed in call order.
        let payloads: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 24 + i as usize]).collect();
        let outcomes = |order: Vec<usize>| {
            let mut s = faulty(FaultPlan::transient(0.35), 0x1EAF);
            let mut by_payload = vec![false; payloads.len()];
            for i in order {
                by_payload[i] = s.put(&payloads[i]).is_ok();
            }
            by_payload
        };
        let forward = outcomes((0..payloads.len()).collect());
        let reversed = outcomes((0..payloads.len()).rev().collect());
        assert_eq!(forward, reversed, "fault decisions must not depend on call order");
        assert!(forward.iter().any(|ok| !ok), "seed 0x1EAF should fire at p=0.35");
        assert!(forward.iter().any(|ok| *ok), "and not fire everywhere");
    }

    #[test]
    fn retries_of_the_same_key_draw_fresh_randomness() {
        // With p=0.5 and many attempts of one payload, both outcomes must
        // occur: the per-key attempt counter advances the draw.
        let mut s = faulty(FaultPlan::transient(0.5), 99);
        let results: Vec<bool> = (0..64).map(|_| s.put(b"same bytes").is_ok()).collect();
        assert!(results.iter().any(|ok| *ok));
        assert!(results.iter().any(|ok| !ok));
    }

    #[test]
    fn transient_faults_are_interrupted_and_leave_inner_untouched() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Put, 0, FaultKind::Transient), 7);
        let err = s.put(b"x").expect_err("scheduled fault");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(s.inner().blob_count(), 0, "nothing reached the inner store");
        // The retry (next invocation) succeeds.
        s.put(b"x").expect("retry works");
    }

    #[test]
    fn permanent_get_fault_kills_the_blob_forever() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Get, 1, FaultKind::Permanent), 7);
        let id = s.put(b"precious").expect("put");
        assert_eq!(s.get(id).expect("first read ok"), b"precious");
        assert!(s.get(id).is_err(), "scheduled permanent fault");
        assert!(s.get(id).is_err(), "dead stays dead");
        assert_eq!(s.ledger().count(FaultKind::Permanent), 2);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Get, 0, FaultKind::BitFlip), 9);
        let id = s.put(&[0u8; 64]).expect("put");
        let corrupted = s.get(id).expect("bit flip still returns bytes");
        let ones: u32 = corrupted.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
        assert_eq!(s.get(id).expect("clean read"), vec![0u8; 64]);
    }

    #[test]
    fn short_write_stores_a_proper_prefix_and_errors() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Put, 0, FaultKind::ShortWrite), 11);
        assert!(s.put(&[7u8; 100]).is_err());
        assert_eq!(s.inner().blob_count(), 1, "torn bytes landed in the store");
        let torn = s.inner().get(0).expect("inner read");
        assert!(torn.len() < 100, "a proper prefix, not the full payload");
        assert!(torn.iter().all(|b| *b == 7));
    }

    #[test]
    fn fsync_lie_reports_ok_without_syncing() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Sync, 0, FaultKind::FsyncLie), 13);
        s.sync().expect("the lie");
        assert!(s.sync_lied());
        assert_eq!(s.ledger().count(FaultKind::FsyncLie), 1);
        s.sync().expect("real sync");
        assert!(!s.sync_lied(), "a real sync clears the lie");
    }

    #[test]
    fn ledger_entries_carry_replay_coordinates_and_serialize() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Get, 1, FaultKind::Transient), 5);
        let id = s.put(b"payload").expect("put");
        let _ = s.get(id); // get #0: clean (first attempt of key `id`)
        let _ = s.get(id); // get #1: scheduled transient
        let ledger = s.ledger();
        assert_eq!(ledger.total(), 1);
        let f = ledger.injected[0];
        assert_eq!((f.op, f.kind), (FaultOp::Get, FaultKind::Transient));
        assert_eq!(f.key, id, "get key is the blob id");
        assert_eq!(f.attempt, 1, "second draw of the same key");
        let dbg = format!("{f:?}");
        assert!(dbg.contains("key") && dbg.contains("attempt"), "{dbg}");
        let j = ledger.to_json();
        assert_eq!(j.get("gets").and_then(Json::as_i64), Some(2));
        let Some(Json::Array(injected)) = j.get("injected") else {
            panic!("injected array")
        };
        let entry = &injected[0];
        assert_eq!(entry.get("attempt").and_then(Json::as_i64), Some(1));
        assert_eq!(
            entry.get("key").and_then(Json::as_str),
            Some(format!("{id:#018x}").as_str())
        );
        // Round-trips through the parser.
        Json::parse(&j.dump()).expect("ledger json parses");
    }

    #[test]
    fn faulted_op_spans_link_to_their_ledger_entry() {
        let mut s = faulty(
            FaultPlan::none()
                .schedule(FaultOp::Put, 0, FaultKind::Transient)
                .schedule(FaultOp::Put, 1, FaultKind::ShortWrite),
            5,
        );
        let trace = Trace::enabled();
        s.attach_trace(&trace);
        assert!(s.put(b"abcdefgh").is_err());
        assert!(s.put(b"abcdefgh").is_err());
        s.put(b"abcdefgh").expect("third attempt clean");
        let spans = trace.spans();
        let puts: Vec<_> = spans.iter().filter(|sp| sp.name == "fault.put").collect();
        assert_eq!(puts.len(), 3);
        let arg = |sp: &kishu_trace::SpanRecord, k: &str| {
            sp.args.iter().find(|(a, _)| a == k).map(|(_, v)| v.clone())
        };
        // Faulted ops carry the fault kind + ledger index; the clean one
        // carries neither, but all three carry key/attempt.
        assert_eq!(arg(puts[0], "ledger").as_deref(), Some("0"));
        assert_eq!(arg(puts[0], "fault").as_deref(), Some("Transient"));
        assert_eq!(arg(puts[1], "ledger").as_deref(), Some("1"));
        assert_eq!(arg(puts[1], "fault").as_deref(), Some("ShortWrite"));
        assert_eq!(arg(puts[2], "ledger"), None);
        for (i, sp) in puts.iter().enumerate() {
            assert_eq!(arg(sp, "attempt").as_deref(), Some(i.to_string().as_str()));
            assert!(arg(sp, "key").is_some());
        }
        // The span annotations agree with the ledger they point into.
        let ledger = s.ledger();
        assert_eq!(ledger.injected[0].kind, FaultKind::Transient);
        assert_eq!(ledger.injected[1].kind, FaultKind::ShortWrite);
    }

    #[test]
    fn scoped_draws_are_unperturbed_by_a_sibling_scope() {
        // Tenant A's fault sequence for its own operations must be
        // identical whether it runs alone or shares the fault state with a
        // busy tenant B retrying the very same keys.
        let scope_a = tenant_scope("alice");
        let scope_b = tenant_scope("bob");
        let payloads: Vec<Vec<u8>> = (0..30u8).map(|i| vec![i; 10 + i as usize]).collect();
        let solo: Vec<bool> = {
            let mut a = FaultStore::scoped(
                Box::new(MemoryStore::new()),
                FaultPlan::transient(0.3),
                0xD1FF,
                scope_a,
            );
            payloads.iter().map(|p| a.put(p).is_ok()).collect()
        };
        let interleaved: Vec<bool> = {
            let a = FaultStore::scoped(
                Box::new(MemoryStore::new()),
                FaultPlan::transient(0.3),
                0xD1FF,
                scope_a,
            );
            let mut b = a.twin(Box::new(MemoryStore::new()), scope_b);
            let mut a = a;
            payloads
                .iter()
                .map(|p| {
                    // B hammers the same payload (same op key!) first; its
                    // retries must not advance A's attempt counters.
                    for _ in 0..3 {
                        let _ = b.put(p);
                    }
                    a.put(p).is_ok()
                })
                .collect()
        };
        assert_eq!(solo, interleaved, "sibling scope perturbed the draws");
        assert!(solo.iter().any(|ok| !ok), "plan should fire at p=0.3");
        assert!(solo.iter().any(|ok| *ok));
    }

    #[test]
    fn scope_zero_is_bit_identical_to_legacy() {
        // `new` (scope 0) and `scoped(.., 0)` agree; the scope field is the
        // only addition to the ledger entries.
        let run = |mk: &dyn Fn() -> FaultStore| {
            let mut s = mk();
            let mut outcomes = Vec::new();
            for i in 0..40u64 {
                outcomes.push(s.put(&[i as u8; 12]).is_ok());
                outcomes.push(s.sync().is_ok());
            }
            (outcomes, s.ledger().injected)
        };
        let plan = FaultPlan::transient(0.25);
        let (o1, l1) = run(&|| FaultStore::new(Box::new(MemoryStore::new()), plan.clone(), 77));
        let (o2, l2) =
            run(&|| FaultStore::scoped(Box::new(MemoryStore::new()), plan.clone(), 77, 0));
        assert_eq!(o1, o2);
        assert_eq!(l1, l2);
        assert!(l1.iter().all(|f| f.scope == 0));
    }

    #[test]
    fn scoped_ledger_snapshots_project_one_tenant() {
        let scope_a = tenant_scope("alice");
        let scope_b = tenant_scope("bob");
        assert_ne!(scope_a, scope_b);
        assert_ne!(scope_a, 0, "tenant scopes never collide with legacy 0");
        let a = FaultStore::scoped(
            Box::new(MemoryStore::new()),
            FaultPlan::none()
                .schedule(FaultOp::Put, 1, FaultKind::Transient),
            3,
            scope_a,
        );
        let handle = a.ledger_handle();
        let mut b = a.twin(Box::new(MemoryStore::new()), scope_b);
        let mut a = a;
        a.put(b"one").expect("a put 0 clean");
        b.put(b"one").expect("b put 0 clean");
        // Each tenant's *own* second put hits the scheduled fault: the
        // schedule indexes per-scope op counts, not a global stream.
        assert!(a.put(b"two").is_err(), "a's put #1 faults");
        assert!(b.put(b"two").is_err(), "b's put #1 faults");
        b.put(b"three").expect("b put 2 clean");
        let la = handle.snapshot_scoped(scope_a);
        let lb = handle.snapshot_scoped(scope_b);
        assert_eq!((la.puts, la.total()), (2, 1));
        assert_eq!((lb.puts, lb.total()), (3, 1));
        assert!(la.injected.iter().all(|f| f.scope == scope_a));
        assert!(lb.injected.iter().all(|f| f.scope == scope_b));
        assert_eq!(la.injected[0].op_index, 1);
        assert_eq!(lb.injected[0].op_index, 1);
        // The combined ledger holds both, and its counts are the totals.
        let all = handle.snapshot();
        assert_eq!((all.puts, all.total()), (5, 2));
    }

    #[test]
    fn permanent_blob_death_is_per_scope() {
        // A permanent get fault in one scope must not kill the same blob id
        // for a sibling scope.
        let scope_a = tenant_scope("alice");
        let a = FaultStore::scoped(
            Box::new(MemoryStore::new()),
            FaultPlan::none().schedule(FaultOp::Get, 0, FaultKind::Permanent),
            5,
            scope_a,
        );
        let mut b = a.twin(Box::new(MemoryStore::new()), tenant_scope("bob"));
        let mut a = a;
        let ia = a.put(b"x").expect("a put");
        let ib = b.put(b"x").expect("b put");
        assert!(a.get(ia).is_err(), "a's scheduled permanent fault");
        assert!(a.get(ia).is_err(), "dead stays dead for a");
        assert!(b.get(ib).is_err(), "b's own get #0 is also scheduled");
        assert!(b.get(ib).is_err(), "and dead stays dead for b");
        // But a fresh blob in scope b is unaffected by a's dead set.
        let ib2 = b.put(b"y").expect("b put 2");
        assert_eq!(b.get(ib2).expect("live"), b"y");
    }

    #[test]
    fn integrity_sweep_sees_through_the_fault_layer() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Get, 2, FaultKind::Permanent), 17);
        let a = s.put(b"a").expect("put");
        let b = s.put(b"b").expect("put");
        let _ = s.get(a); // ok (get #0)
        let _ = s.get(b); // ok (get #1)
        let _ = s.get(a); // permanent fault (get #2): a is dead now
        let report = s.integrity_sweep();
        assert_eq!(report.unreadable, vec![a]);
        assert_eq!(report.readable, 1);
    }
}
