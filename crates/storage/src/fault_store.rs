//! Deterministic fault injection for checkpoint stores.
//!
//! [`FaultStore`] decorates any [`CheckpointStore`] and, driven by a seeded
//! [`kishu_testkit::rng::Rng`] and a [`FaultPlan`], injects the failure
//! modes a real storage backend exhibits under duress:
//!
//! * **transient I/O errors** (`ErrorKind::Interrupted`) on `put`/`get`/
//!   `sync` — a retry may succeed;
//! * **permanent I/O errors** (`ErrorKind::Other`) — for `get`, the blob is
//!   marked dead and every later read of it fails too;
//! * **payload bit-flips** on `get` — the caller receives bytes with one
//!   bit flipped, exercising its integrity checking / fallback paths;
//! * **short writes** on `put` — only a prefix of the payload reaches the
//!   inner store before the simulated tear, and the caller sees an error;
//! * **fsync lies** on `sync` — success is reported without the inner
//!   store ever being synced (the classic lying-disk failure).
//!
//! Every decision is a deterministic function of the seed and the operation
//! sequence, so a failing run replays exactly from its seed. Each injected
//! fault is appended to a [`FaultLedger`] so tests can assert both that
//! faults actually fired and that the layers above degraded gracefully
//! (§5.3's fallback recomputation) instead of corrupting state.

use std::collections::BTreeSet;
use std::io;
use std::sync::{Arc, Mutex};

use kishu_testkit::rng::Rng;

use crate::{BlobId, CheckpointStore, StoreStats};

/// Which store operation a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultOp {
    /// [`CheckpointStore::put`]
    Put,
    /// [`CheckpointStore::get`]
    Get,
    /// [`CheckpointStore::sync`]
    Sync,
}

/// The failure mode injected by one fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Retryable I/O error (`ErrorKind::Interrupted`); the inner store is
    /// untouched.
    Transient,
    /// Non-retryable I/O error (`ErrorKind::Other`). On `get`, the blob is
    /// marked dead: all later reads of the same id fail too.
    Permanent,
    /// One random payload bit flipped in the bytes returned by `get`.
    BitFlip,
    /// `put` writes only a random proper prefix to the inner store, then
    /// errors — the torn-write shape a crash mid-append produces.
    ShortWrite,
    /// `sync` reports success without syncing the inner store.
    FsyncLie,
}

/// A one-shot fault scheduled at a specific operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Operation the fault fires on.
    pub op: FaultOp,
    /// Fires on the `at`-th invocation of `op` (0-based, counted per op).
    pub at: u64,
    /// Failure mode to inject.
    pub kind: FaultKind,
}

/// Per-operation fault probabilities plus scheduled one-shot faults.
///
/// Probabilities are evaluated independently per call in a fixed order
/// (transient first, then the op-specific corruption mode); a scheduled
/// fault at the call's index takes precedence over both.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability of a transient error on `put`.
    pub put_transient_p: f64,
    /// Probability of a transient error on `get`.
    pub get_transient_p: f64,
    /// Probability of a transient error on `sync`.
    pub sync_transient_p: f64,
    /// Probability of a short write on `put` (after the transient check).
    pub short_write_p: f64,
    /// Probability of a payload bit-flip on `get` (after the transient
    /// check; applied to the successfully read bytes).
    pub bit_flip_p: f64,
    /// Probability `sync` lies (after the transient check).
    pub fsync_lie_p: f64,
    /// One-shot faults pinned to operation indices.
    pub scheduled: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// Plan with no faults at all (the wrapper becomes a pure pass-through
    /// that still counts operations).
    pub fn none() -> Self {
        Self::default()
    }

    /// Plan injecting transient errors on `put`/`get`/`sync`, each with
    /// probability `p`, and nothing else.
    pub fn transient(p: f64) -> Self {
        FaultPlan {
            put_transient_p: p,
            get_transient_p: p,
            sync_transient_p: p,
            ..Self::default()
        }
    }

    /// Builder: add a scheduled one-shot fault.
    pub fn schedule(mut self, op: FaultOp, at: u64, kind: FaultKind) -> Self {
        self.scheduled.push(ScheduledFault { op, at, kind });
        self
    }
}

/// One injected fault, as recorded in the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Operation the fault fired on.
    pub op: FaultOp,
    /// Failure mode injected.
    pub kind: FaultKind,
    /// Per-op invocation index (0-based) at which it fired.
    pub op_index: u64,
    /// Blob involved, when the op names one (`get`, and `put`'s assigned id
    /// for short writes that reached the inner store).
    pub blob: Option<BlobId>,
}

/// Record of every fault injected plus how many operations ran, for test
/// assertions ("faults actually fired", "N of M gets were corrupted").
#[derive(Debug, Clone, Default)]
pub struct FaultLedger {
    /// Every injected fault, in injection order.
    pub injected: Vec<InjectedFault>,
    /// Total `put` calls observed (faulted or not).
    pub puts: u64,
    /// Total `get` calls observed.
    pub gets: u64,
    /// Total `sync` calls observed.
    pub syncs: u64,
}

impl FaultLedger {
    /// Number of injected faults of `kind`.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.injected.iter().filter(|f| f.kind == kind).count()
    }

    /// Number of injected faults on `op`.
    pub fn count_op(&self, op: FaultOp) -> usize {
        self.injected.iter().filter(|f| f.op == op).count()
    }

    /// Total injected faults.
    pub fn total(&self) -> usize {
        self.injected.len()
    }
}

/// Mutable wrapper state behind one lock: `get` takes `&self`, so the RNG
/// and ledger need interior mutability (Mutex to match the store's Send
/// posture rather than RefCell).
#[derive(Debug)]
struct FaultState {
    rng: Rng,
    ledger: FaultLedger,
    /// Blobs hit by a permanent `get` fault: dead forever.
    dead_blobs: BTreeSet<BlobId>,
    /// Ops of this kind permanently failed (permanent fault on `put`/`sync`).
    dead_ops: BTreeSet<FaultOp>,
    /// Set by a fsync lie; cleared by the next real sync. Exposed so crash
    /// simulations know whether "durable" data actually was.
    sync_lied: bool,
}

/// A [`CheckpointStore`] decorator injecting deterministic faults per a
/// [`FaultPlan`]. See the module docs for the failure-mode catalogue.
pub struct FaultStore {
    inner: Box<dyn CheckpointStore>,
    plan: FaultPlan,
    state: Arc<Mutex<FaultState>>,
}

/// Cloneable handle onto a [`FaultStore`]'s ledger, for observing injected
/// faults after the store has been boxed away into a session
/// (`KishuSession::new` takes ownership of its `Box<dyn CheckpointStore>`).
#[derive(Clone)]
pub struct FaultLedgerHandle(Arc<Mutex<FaultState>>);

impl FaultLedgerHandle {
    /// Snapshot of the ledger as of now.
    pub fn snapshot(&self) -> FaultLedger {
        self.0.lock().expect("fault state poisoned").ledger.clone()
    }

    /// Total faults injected so far.
    pub fn total(&self) -> usize {
        self.0.lock().expect("fault state poisoned").ledger.total()
    }
}

impl std::fmt::Debug for FaultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("fault state poisoned");
        f.debug_struct("FaultStore")
            .field("plan", &self.plan)
            .field("injected", &st.ledger.total())
            .finish()
    }
}

impl FaultStore {
    /// Wrap `inner`, injecting faults per `plan`, with every random
    /// decision derived from `seed`.
    pub fn new(inner: Box<dyn CheckpointStore>, plan: FaultPlan, seed: u64) -> Self {
        FaultStore {
            inner,
            plan,
            state: Arc::new(Mutex::new(FaultState {
                rng: Rng::seed_from_u64(seed),
                ledger: FaultLedger::default(),
                dead_blobs: BTreeSet::new(),
                dead_ops: BTreeSet::new(),
                sync_lied: false,
            })),
        }
    }

    /// Snapshot of the injected-fault ledger.
    pub fn ledger(&self) -> FaultLedger {
        self.state.lock().expect("fault state poisoned").ledger.clone()
    }

    /// A cloneable handle onto the ledger that stays valid after this store
    /// is boxed into a session.
    pub fn ledger_handle(&self) -> FaultLedgerHandle {
        FaultLedgerHandle(Arc::clone(&self.state))
    }

    /// Whether a fsync lie has swallowed a `sync` since the last real one.
    pub fn sync_lied(&self) -> bool {
        self.state.lock().expect("fault state poisoned").sync_lied
    }

    /// The wrapped store (e.g. to inspect true stats underneath the faults).
    pub fn inner(&self) -> &dyn CheckpointStore {
        self.inner.as_ref()
    }

    /// Unwrap, discarding the fault layer.
    pub fn into_inner(self) -> Box<dyn CheckpointStore> {
        self.inner
    }

    /// The scheduled fault for this `(op, index)`, if any.
    fn scheduled(&self, op: FaultOp, index: u64) -> Option<FaultKind> {
        self.plan
            .scheduled
            .iter()
            .find(|s| s.op == op && s.at == index)
            .map(|s| s.kind)
    }

    /// Take this call's per-op index and fault decision (plus the short-
    /// write cut point, drawn here so the RNG stream stays op-ordered).
    /// A scheduled fault beats the probabilistic draws; a permanently
    /// failed op/blob beats both.
    fn decide(&self, op: FaultOp, payload_len: usize, blob: Option<BlobId>) -> Decision {
        let mut st = self.state.lock().expect("fault state poisoned");
        let (index, dead, transient_p, corrupt_p, corrupt_kind) = match op {
            FaultOp::Put => {
                let i = st.ledger.puts;
                st.ledger.puts += 1;
                let dead = st.dead_ops.contains(&FaultOp::Put);
                (i, dead, self.plan.put_transient_p, self.plan.short_write_p, FaultKind::ShortWrite)
            }
            FaultOp::Get => {
                let i = st.ledger.gets;
                st.ledger.gets += 1;
                let dead = blob.is_some_and(|b| st.dead_blobs.contains(&b));
                (i, dead, self.plan.get_transient_p, self.plan.bit_flip_p, FaultKind::BitFlip)
            }
            FaultOp::Sync => {
                let i = st.ledger.syncs;
                st.ledger.syncs += 1;
                let dead = st.dead_ops.contains(&FaultOp::Sync);
                (i, dead, self.plan.sync_transient_p, self.plan.fsync_lie_p, FaultKind::FsyncLie)
            }
        };
        let kind = if dead {
            Some(FaultKind::Permanent)
        } else if let Some(k) = self.scheduled(op, index) {
            Some(k)
        } else if st.rng.gen_bool(transient_p) {
            Some(FaultKind::Transient)
        } else if st.rng.gen_bool(corrupt_p) {
            Some(corrupt_kind)
        } else {
            None
        };
        let cut = match kind {
            Some(FaultKind::ShortWrite) if payload_len > 0 => st.rng.random_range(0..payload_len),
            _ => 0,
        };
        Decision { index, kind, cut }
    }

    /// Append one injected fault to the ledger.
    fn record(&self, op: FaultOp, kind: FaultKind, op_index: u64, blob: Option<BlobId>) {
        self.state
            .lock()
            .expect("fault state poisoned")
            .ledger
            .injected
            .push(InjectedFault { op, kind, op_index, blob });
    }

    fn transient_err(op: FaultOp) -> io::Error {
        io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected transient {op:?} fault"),
        )
    }

    fn permanent_err(op: FaultOp) -> io::Error {
        io::Error::other(format!("injected permanent {op:?} fault"))
    }
}

/// One call's fault decision.
struct Decision {
    index: u64,
    kind: Option<FaultKind>,
    cut: usize,
}

impl CheckpointStore for FaultStore {
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId> {
        let d = self.decide(FaultOp::Put, bytes.len(), None);
        match d.kind {
            None => self.inner.put(bytes),
            Some(kind @ FaultKind::Transient) => {
                self.record(FaultOp::Put, kind, d.index, None);
                Err(Self::transient_err(FaultOp::Put))
            }
            Some(kind @ FaultKind::ShortWrite) => {
                // A proper prefix lands in the inner store (the torn bytes a
                // crashed append leaves behind), then the caller sees the
                // error — it must never reference the garbage id.
                let blob = self.inner.put(&bytes[..d.cut]).ok();
                self.record(FaultOp::Put, kind, d.index, blob);
                Err(Self::permanent_err(FaultOp::Put))
            }
            // Permanent (and any inapplicable scheduled kind): a hard,
            // non-retryable error; `Permanent` also fails every later put.
            Some(kind) => {
                if kind == FaultKind::Permanent {
                    self.state
                        .lock()
                        .expect("fault state poisoned")
                        .dead_ops
                        .insert(FaultOp::Put);
                }
                self.record(FaultOp::Put, kind, d.index, None);
                Err(Self::permanent_err(FaultOp::Put))
            }
        }
    }

    fn get(&self, id: BlobId) -> io::Result<Vec<u8>> {
        let d = self.decide(FaultOp::Get, 0, Some(id));
        match d.kind {
            None => self.inner.get(id),
            Some(kind @ FaultKind::Transient) => {
                self.record(FaultOp::Get, kind, d.index, Some(id));
                Err(Self::transient_err(FaultOp::Get))
            }
            Some(kind @ FaultKind::BitFlip) => {
                let mut bytes = self.inner.get(id)?;
                if !bytes.is_empty() {
                    let bit = {
                        let mut st = self.state.lock().expect("fault state poisoned");
                        st.rng.random_range(0..bytes.len() * 8)
                    };
                    bytes[bit / 8] ^= 1 << (bit % 8);
                }
                self.record(FaultOp::Get, kind, d.index, Some(id));
                Ok(bytes)
            }
            Some(kind) => {
                if kind == FaultKind::Permanent {
                    self.state
                        .lock()
                        .expect("fault state poisoned")
                        .dead_blobs
                        .insert(id);
                }
                self.record(FaultOp::Get, kind, d.index, Some(id));
                Err(Self::permanent_err(FaultOp::Get))
            }
        }
    }

    fn blob_count(&self) -> u64 {
        self.inner.blob_count()
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn sync(&mut self) -> io::Result<()> {
        let d = self.decide(FaultOp::Sync, 0, None);
        match d.kind {
            None => {
                let r = self.inner.sync();
                if r.is_ok() {
                    self.state.lock().expect("fault state poisoned").sync_lied = false;
                }
                r
            }
            Some(kind @ FaultKind::Transient) => {
                self.record(FaultOp::Sync, kind, d.index, None);
                Err(Self::transient_err(FaultOp::Sync))
            }
            Some(kind @ FaultKind::FsyncLie) => {
                self.state.lock().expect("fault state poisoned").sync_lied = true;
                self.record(FaultOp::Sync, kind, d.index, None);
                Ok(())
            }
            Some(kind) => {
                if kind == FaultKind::Permanent {
                    self.state
                        .lock()
                        .expect("fault state poisoned")
                        .dead_ops
                        .insert(FaultOp::Sync);
                }
                self.record(FaultOp::Sync, kind, d.index, None);
                Err(Self::permanent_err(FaultOp::Sync))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;

    fn faulty(plan: FaultPlan, seed: u64) -> FaultStore {
        FaultStore::new(Box::new(MemoryStore::new()), plan, seed)
    }

    #[test]
    fn no_faults_is_a_pure_pass_through() {
        let mut s = faulty(FaultPlan::none(), 1);
        let a = s.put(b"alpha").expect("put");
        assert_eq!(s.get(a).expect("get"), b"alpha");
        s.sync().expect("sync");
        assert_eq!(s.blob_count(), 1);
        let ledger = s.ledger();
        assert_eq!(ledger.total(), 0);
        assert_eq!((ledger.puts, ledger.gets, ledger.syncs), (1, 1, 1));
    }

    #[test]
    fn same_seed_injects_the_same_faults() {
        let run = |seed: u64| {
            let mut s = faulty(FaultPlan::transient(0.3), seed);
            let mut outcomes = Vec::new();
            for i in 0..50u64 {
                outcomes.push(s.put(&[i as u8; 16]).is_ok());
                outcomes.push(s.get(i % s.blob_count().max(1)).is_ok());
                outcomes.push(s.sync().is_ok());
            }
            (outcomes, s.ledger().injected)
        };
        assert_eq!(run(42), run(42), "deterministic from the seed");
        assert_ne!(run(42).1, run(43).1, "different seeds, different faults");
    }

    #[test]
    fn transient_faults_are_interrupted_and_leave_inner_untouched() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Put, 0, FaultKind::Transient), 7);
        let err = s.put(b"x").expect_err("scheduled fault");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(s.inner().blob_count(), 0, "nothing reached the inner store");
        // The retry (next invocation) succeeds.
        s.put(b"x").expect("retry works");
    }

    #[test]
    fn permanent_get_fault_kills_the_blob_forever() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Get, 1, FaultKind::Permanent), 7);
        let id = s.put(b"precious").expect("put");
        assert_eq!(s.get(id).expect("first read ok"), b"precious");
        assert!(s.get(id).is_err(), "scheduled permanent fault");
        assert!(s.get(id).is_err(), "dead stays dead");
        assert_eq!(s.ledger().count(FaultKind::Permanent), 2);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Get, 0, FaultKind::BitFlip), 9);
        let id = s.put(&[0u8; 64]).expect("put");
        let corrupted = s.get(id).expect("bit flip still returns bytes");
        let ones: u32 = corrupted.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
        assert_eq!(s.get(id).expect("clean read"), vec![0u8; 64]);
    }

    #[test]
    fn short_write_stores_a_proper_prefix_and_errors() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Put, 0, FaultKind::ShortWrite), 11);
        assert!(s.put(&[7u8; 100]).is_err());
        assert_eq!(s.inner().blob_count(), 1, "torn bytes landed in the store");
        let torn = s.inner().get(0).expect("inner read");
        assert!(torn.len() < 100, "a proper prefix, not the full payload");
        assert!(torn.iter().all(|b| *b == 7));
    }

    #[test]
    fn fsync_lie_reports_ok_without_syncing() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Sync, 0, FaultKind::FsyncLie), 13);
        s.sync().expect("the lie");
        assert!(s.sync_lied());
        assert_eq!(s.ledger().count(FaultKind::FsyncLie), 1);
        s.sync().expect("real sync");
        assert!(!s.sync_lied(), "a real sync clears the lie");
    }

    #[test]
    fn integrity_sweep_sees_through_the_fault_layer() {
        let mut s = faulty(FaultPlan::none().schedule(FaultOp::Get, 2, FaultKind::Permanent), 17);
        let a = s.put(b"a").expect("put");
        let b = s.put(b"b").expect("put");
        let _ = s.get(a); // ok (get #0)
        let _ = s.get(b); // ok (get #1)
        let _ = s.get(a); // permanent fault (get #2): a is dead now
        let report = s.integrity_sweep();
        assert_eq!(report.unreadable, vec![a]);
        assert_eq!(report.readable, 1);
    }
}
