//! CRC-32 (IEEE 802.3 polynomial), implemented in-repo to keep the
//! dependency surface at the workspace's allowed set. Used to detect torn
//! and corrupted records in the [`crate::FileStore`] log.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB88320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of a byte slice (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF` —
/// the standard zlib/`cksum -o 3` variant).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for b in bytes {
        let idx = ((crc ^ *b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use kishu_testkit::prelude::*;

    proptest! {
        #[test]
        fn equal_inputs_equal_crcs(data in prop::collection::vec(any::<u8>(), 0..512)) {
            prop_assert_eq!(crc32(&data), crc32(&data.clone()));
        }

        #[test]
        fn appending_changes_crc(data in prop::collection::vec(any::<u8>(), 0..256)) {
            let mut longer = data.clone();
            longer.push(0xAB);
            // Not cryptographically guaranteed, but holds for CRC-32 with a
            // single appended byte.
            prop_assert_ne!(crc32(&data), crc32(&longer));
        }
    }
}
