//! Content-addressed blob index for checkpoint deduplication.
//!
//! The incremental checkpointer only serializes co-variables whose delta
//! detector fired — but the detector is deliberately conservative (Table
//! 5's false positives, address-only drift after a checkout, branch
//! switches that re-create an earlier state), so the same bytes get
//! serialized again more often than they change. [`BlobIndex`] remembers
//! the content key of every sealed blob the session has successfully
//! written; a repeat write of identical bytes resolves to the existing
//! [`BlobId`] and the store is never touched — the checkpoint becomes a
//! metadata-only operation, which is the content-addressed reuse the Kishu
//! technical report (§5) and the Code+Data Space Versioning line of work
//! argue for.
//!
//! The key is `(xxh64(sealed bytes), length)`. A 64-bit content hash alone
//! would make an accidental collision astronomically unlikely; pairing it
//! with the exact byte length makes the index discriminate every
//! same-hash-different-length pair for free. The index is advisory, purely
//! in memory, and rebuilt empty on `resume` — a miss only costs one
//! redundant write, never correctness.

use std::collections::HashMap;

use kishu_testkit::hash::xxh64;

use crate::BlobId;

/// Seed for the content hash, fixed so content keys are stable across
/// sessions and across the serial/parallel pipelines.
const CONTENT_SEED: u64 = 0xC0_7E17_DE_D0;

/// The content key of a sealed payload: `(xxh64, byte length)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentKey(pub u64, pub u64);

/// Compute the [`ContentKey`] of a sealed blob.
pub fn content_key(bytes: &[u8]) -> ContentKey {
    ContentKey(xxh64(bytes, CONTENT_SEED), bytes.len() as u64)
}

/// In-memory content-addressed index over successfully written blobs.
#[derive(Debug, Default)]
pub struct BlobIndex {
    map: HashMap<ContentKey, BlobId>,
}

impl BlobIndex {
    /// Empty index (a fresh or freshly resumed session).
    pub fn new() -> Self {
        Self::default()
    }

    /// The blob already holding exactly these bytes, if any.
    pub fn lookup(&self, key: ContentKey) -> Option<BlobId> {
        self.map.get(&key).copied()
    }

    /// Record that `blob` now durably holds the content `key`. Only call
    /// after a *successful* write of the full sealed payload — indexing a
    /// dropped or torn write would alias future checkpoints to garbage.
    pub fn record(&mut self, key: ContentKey, blob: BlobId) {
        self.map.insert(key, blob);
    }

    /// Number of distinct contents indexed.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_bytes_resolve_to_the_first_blob() {
        let mut ix = BlobIndex::new();
        let k = content_key(b"payload");
        assert_eq!(ix.lookup(k), None);
        ix.record(k, 7);
        assert_eq!(ix.lookup(content_key(b"payload")), Some(7));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn changed_bytes_never_alias() {
        let mut ix = BlobIndex::new();
        ix.record(content_key(b"v1 of the data"), 0);
        assert_eq!(ix.lookup(content_key(b"v2 of the data")), None);
        // Same length, one byte different: distinct key.
        assert_ne!(content_key(b"aaaa"), content_key(b"aaab"));
        // Same prefix, different length: distinct key even on a (contrived)
        // hash match, because the length is part of the key.
        assert_ne!(content_key(b"aaaa"), content_key(b"aaaaa"));
    }

    #[test]
    fn rerecording_updates_to_the_newest_blob() {
        // Harmless either way (both blobs hold the bytes); newest wins.
        let mut ix = BlobIndex::new();
        let k = content_key(b"x");
        ix.record(k, 1);
        ix.record(k, 9);
        assert_eq!(ix.lookup(k), Some(9));
        assert_eq!(ix.len(), 1);
    }
}
