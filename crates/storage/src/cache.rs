//! Bounded content-addressed read cache for checkout blobs.
//!
//! Time-traveling is read-heavy in exactly the way the write path is
//! write-light: an undo/redo loop re-reads the same few diverged
//! co-variable blobs over and over, and a branch compare bounces between
//! two small sets of versions. [`BlobCache`] keeps recently verified
//! checkout payloads in memory, keyed by the same `(xxh64, length)`
//! [`ContentKey`] the write pipeline's [`crate::BlobIndex`] uses — so a
//! payload that deduplicated on the way in is also shared on the way out,
//! regardless of how many blob ids point at it.
//!
//! Semantics that keep the layers above simple:
//!
//! * the cache holds **verified** payloads (post-CRC, pre-deserialize);
//!   a hit can skip the store read *and* the integrity check;
//! * eviction is strict LRU by payload bytes against a fixed capacity;
//!   an entry larger than the whole capacity is never admitted;
//! * `capacity == 0` disables the cache entirely (every lookup returns
//!   nothing and counts as `CacheStats::disabled`, not as a miss; every
//!   insert is dropped) — the knob's documented "off" position;
//! * the cache is advisory and deterministic: identical call sequences
//!   produce identical hit/miss/eviction sequences, which the parallel
//!   checkout differential suite relies on.

use std::collections::{BTreeMap, HashMap};

use crate::dedup::ContentKey;

/// Counters for cache observability (`CheckoutReport::blobs_cached` and the
/// restore bench sweep read these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a payload.
    pub hits: u64,
    /// Lookups that found nothing *while the cache was enabled*. Lookups
    /// against a disabled cache are not misses — the cache never had a
    /// chance — and counting them here used to poison miss-rate numbers in
    /// cache-off comparisons; they are tracked in `disabled` instead.
    pub misses: u64,
    /// Lookups made while the cache was disabled (`capacity == 0`).
    /// Excluded from hit/miss-rate derivations.
    pub disabled: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Payload bytes currently resident.
    pub bytes: u64,
}

/// An LRU-by-bytes cache of verified checkout payloads.
#[derive(Debug, Default)]
pub struct BlobCache {
    capacity: u64,
    /// Resident payloads with the recency tick they were last touched at.
    entries: HashMap<ContentKey, (u64, Vec<u8>)>,
    /// Recency order: tick -> key. Ticks are unique (monotone counter), so
    /// the first entry is always the least recently used.
    recency: BTreeMap<u64, ContentKey>,
    tick: u64,
    bytes: u64,
    hits: u64,
    misses: u64,
    disabled: u64,
    evictions: u64,
    /// Observability only: hit/miss/eviction counters mirror into it.
    trace: kishu_trace::Trace,
}

impl BlobCache {
    /// A cache bounded to `capacity` payload bytes; `0` disables it.
    pub fn new(capacity: u64) -> Self {
        BlobCache {
            capacity,
            ..BlobCache::default()
        }
    }

    /// The configured byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Whether the cache is the disabled (`capacity == 0`) no-op.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Adopt an observability handle: hit/miss/eviction counters mirror
    /// into its metrics registry. Purely observational.
    pub fn attach_trace(&mut self, trace: &kishu_trace::Trace) {
        self.trace = trace.clone();
    }

    /// Look `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: ContentKey) -> Option<Vec<u8>> {
        if self.capacity == 0 {
            // A disabled cache can't miss — don't let the "off" knob
            // masquerade as a 100% miss rate.
            self.disabled += 1;
            self.trace.counter("cache.disabled_lookup", 1);
            return None;
        }
        match self.entries.get_mut(&key) {
            Some((tick, payload)) => {
                self.recency.remove(tick);
                self.tick += 1;
                *tick = self.tick;
                self.recency.insert(self.tick, key);
                self.hits += 1;
                self.trace.counter("cache.hit", 1);
                Some(payload.clone())
            }
            None => {
                self.misses += 1;
                self.trace.counter("cache.miss", 1);
                None
            }
        }
    }

    /// Admit a verified payload. Re-inserting a resident key only refreshes
    /// its recency; a payload larger than the whole capacity is rejected;
    /// otherwise least-recently-used entries are evicted until it fits.
    pub fn insert(&mut self, key: ContentKey, payload: &[u8]) {
        if self.capacity == 0 || payload.len() as u64 > self.capacity {
            return;
        }
        if let Some((tick, _)) = self.entries.get_mut(&key) {
            self.recency.remove(tick);
            self.tick += 1;
            *tick = self.tick;
            self.recency.insert(self.tick, key);
            return;
        }
        while self.bytes + payload.len() as u64 > self.capacity {
            let (&oldest, &victim) = self
                .recency
                .iter()
                .next()
                .expect("over capacity implies a resident entry");
            self.recency.remove(&oldest);
            let (_, evicted) = self.entries.remove(&victim).expect("recency/entries in sync");
            self.bytes -= evicted.len() as u64;
            self.evictions += 1;
            self.trace.counter("cache.evict", 1);
        }
        self.tick += 1;
        self.entries.insert(key, (self.tick, payload.to_vec()));
        self.recency.insert(self.tick, key);
        self.bytes += payload.len() as u64;
    }

    /// Evict every resident payload, keeping the capacity and the lifetime
    /// hit/miss/eviction counters. Used when the store underneath changes
    /// out from under the cache (a shared-store GC pass).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.bytes = 0;
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            disabled: self.disabled,
            evictions: self.evictions,
            entries: self.entries.len() as u64,
            bytes: self.bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dedup::content_key;

    #[test]
    fn hit_returns_the_inserted_payload() {
        let mut c = BlobCache::new(1024);
        let k = content_key(b"payload");
        assert_eq!(c.get(k), None);
        c.insert(k, b"payload");
        assert_eq!(c.get(k).as_deref(), Some(&b"payload"[..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.bytes), (1, 1, 1, 7));
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut c = BlobCache::new(0);
        assert!(c.is_disabled());
        let k = content_key(b"x");
        c.insert(k, b"x");
        assert_eq!(c.get(k), None);
        assert_eq!(c.get(k), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        // Disabled lookups are their own counter — not misses, so a
        // cache-off run derives a 0/0 miss rate instead of 100%.
        assert_eq!((s.hits, s.misses, s.disabled), (0, 0, 2));
    }

    #[test]
    fn lru_evicts_the_coldest_entry_by_bytes() {
        let mut c = BlobCache::new(10);
        let a = content_key(b"aaaa");
        let b = content_key(b"bbbb");
        c.insert(a, b"aaaa");
        c.insert(b, b"bbbb");
        // Touch `a` so `b` is now the LRU entry.
        assert!(c.get(a).is_some());
        c.insert(content_key(b"cccc"), b"cccc");
        assert!(c.get(a).is_some(), "recently used survives");
        assert_eq!(c.get(b), None, "LRU entry evicted");
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= 10);
    }

    #[test]
    fn oversized_payload_is_never_admitted() {
        let mut c = BlobCache::new(4);
        let k = content_key(b"too large");
        c.insert(k, b"too large");
        assert_eq!(c.get(k), None);
        assert_eq!(c.stats().entries, 0);
        // And it evicted nothing on the way.
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn reinsert_refreshes_recency_without_duplicating() {
        let mut c = BlobCache::new(8);
        let a = content_key(b"aaaa");
        let b = content_key(b"bbbb");
        c.insert(a, b"aaaa");
        c.insert(b, b"bbbb");
        c.insert(a, b"aaaa"); // refresh, not duplicate
        assert_eq!(c.stats().bytes, 8);
        c.insert(content_key(b"cccc"), b"cccc");
        assert!(c.get(a).is_some(), "refreshed entry survived");
        assert_eq!(c.get(b), None, "stale entry evicted instead");
    }

    #[test]
    fn deterministic_across_identical_sequences() {
        let run = || {
            let mut c = BlobCache::new(64);
            let keys: Vec<_> = (0u8..16)
                .map(|i| {
                    let payload = vec![i; 8];
                    let k = content_key(&payload);
                    c.insert(k, &payload);
                    k
                })
                .collect();
            let pattern: Vec<bool> = keys.iter().map(|k| c.get(*k).is_some()).collect();
            (pattern, c.stats())
        };
        assert_eq!(run(), run());
    }
}
