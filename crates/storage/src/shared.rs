//! Multi-tenant shared checkpoint store.
//!
//! The paper's demo checkpoints one notebook session into one store; the
//! north star is millions of users, where cross-user redundancy (the same
//! dataset loaded, the same model trained) is the dominant storage win.
//! [`SharedStore`] is that deployment shape:
//!
//! * **Store-wide dedup** — every sealed payload is content-addressed
//!   ([`crate::dedup::content_key`]); identical bytes written by *any*
//!   tenant land in the store once and are refcounted. Dedup here is
//!   load-bearing (unlike the advisory per-session [`crate::BlobIndex`]):
//!   a repeat write increments a refcount instead of appending.
//! * **Sharded blob log** — payloads are routed to one of N shards by
//!   content-key prefix, each with its own ordered writer behind its own
//!   lock, so concurrent sessions stop serializing on a single file lock.
//!   One tenant's writes stay in-order per shard, and since a tenant's
//!   blob ids are assigned by its own dense counter, the per-session
//!   serial-oracle invariant survives.
//! * **Per-tenant views** — [`SharedStore::tenant`] returns a
//!   [`TenantHandle`] implementing [`CheckpointStore`] with *dense,
//!   private blob ids*: tenant blob `k` is its `k`-th successful `put`,
//!   exactly as on a private store. Gets resolve through the tenant's
//!   mapping to physical `(shard, index)` pairs. Stats are logical
//!   (mirroring [`crate::MemoryStore`]'s accounting), so a session cannot
//!   observe its neighbors through sizes either. The shared store is
//!   **observationally private**: every read, id, size, and error a
//!   tenant sees is byte-identical to running alone — the property
//!   `tests/multi_tenant.rs` proves differentially.
//! * **Chunk dedup under the id layer** — shard backends run the
//!   storage-engine-v2 representation (content-defined chunking +
//!   per-chunk compression, [`crate::chunk`]), so two tenants' *distinct*
//!   blobs that share most of their bytes (the same dataframe, one cell's
//!   edit apart) share chunks physically. Chunk dedup scope is the shard:
//!   blob-level routing sends whole payloads to one shard, so similar
//!   payloads that route differently don't share chunks — an accepted
//!   trade against cross-shard coordination on every chunk. Aggregate
//!   counters: [`SharedStore::chunk_stats`].
//! * **GC** — see [`crate::gc`]: a stop-the-world mark-and-sweep pass over
//!   caller-supplied live sets that compacts shards into a new generation
//!   and commits via an atomic manifest rename, crash-consistent with
//!   [`SharedStore::open`].
//!
//! ## File layout
//!
//! A file-backed store is a directory:
//!
//! ```text
//! MANIFEST.json            {"schema","shards","generation","tenants"}
//! shard-<i>.g<G>.log       payload log (FileStore framing), shard i, gen G
//! tenant-<hex>.g<G>.log    mapping log: tenant blob k = k-th record
//! ```
//!
//! Mapping records are `[1, shard: u32, idx: u32, len: u64]` (all LE) for a
//! live mapping or `[0]` for a tombstone (a blob GC reclaimed; the id stays
//! allocated so tenant ids remain dense forever). Everything outside the
//! manifest is append-only between GCs; `open` rebuilds dedup maps and
//! refcounts by scanning, so no index file can go stale.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use kishu_testkit::hash::xxh64;
use kishu_testkit::json::Json;
use kishu_trace::Trace;

use crate::dedup::{content_key, ContentKey};
use crate::file_store::FileStore;
use crate::{BlobId, CheckpointStore, MemoryStore, StoreStats};

/// Schema tag of `MANIFEST.json`.
pub const SHARED_SCHEMA: &str = "kishu-shared-v1";

/// Default shard count when `KISHU_STORE_SHARDS` is unset.
pub const DEFAULT_SHARDS: usize = 4;

/// Shard count from the `KISHU_STORE_SHARDS` environment knob, clamped to
/// `[1, 64]`; [`DEFAULT_SHARDS`] when unset or unparsable.
pub fn default_shard_count() -> usize {
    std::env::var("KISHU_STORE_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.clamp(1, 64))
        .unwrap_or(DEFAULT_SHARDS)
}

/// Physical address of a stored payload: `(shard, index within shard)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Phys {
    pub(crate) shard: u32,
    pub(crate) idx: u32,
}

/// Which shard a content key routes to. A pure function, so a tenant's
/// shard assignment for a payload never depends on its neighbors.
///
/// The full 64-bit hash is remixed with the splitmix64 finalizer and then
/// reduced by multiply-shift. The original routing (`(hash >> 48) % n`)
/// had two skews: it consulted only the top 16 hash bits, and the modulo
/// was biased for non-power-of-two shard counts; both showed up as uneven
/// shard loads. The finalizer spreads every input bit over the output and
/// the multiply-shift reduction is bias-free for any `n`.
///
/// **Compat:** changing this function re-routes *future* puts only.
/// Existing blobs are always read through their tenants' persisted
/// `(shard, idx)` mappings — never by recomputing `shard_of` — so logs
/// written under the old routing stay fully readable on `open`; the worst
/// case is a payload stored on two shards (old copy + newly routed copy)
/// until GC compacts, which costs space, never correctness.
pub(crate) fn shard_of(key: ContentKey, nshards: usize) -> usize {
    let mut z = key.0;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z as u128 * nshards.max(1) as u128) >> 64) as usize
}

/// One shard: its ordered payload log plus the store-wide dedup index and
/// refcounts for the contents that route here.
pub(crate) struct ShardState {
    pub(crate) store: Box<dyn CheckpointStore>,
    /// Content key → local index. Load-bearing (a hit suppresses a write),
    /// safe because the key pairs a 64-bit hash with the exact length.
    pub(crate) dedup: HashMap<ContentKey, u32>,
    /// Live references per local blob, across all tenants. Only GC ever
    /// decreases these (by recomputation, so they structurally cannot go
    /// negative).
    pub(crate) refs: Vec<u64>,
    /// Payload length per local blob.
    pub(crate) lens: Vec<u64>,
}

/// One tenant's view state: its dense id → physical mapping.
pub(crate) struct TenantState {
    /// Tenant blob `k` ↦ `(phys, payload len)`, or `None` once reclaimed
    /// (ids stay dense forever; a reclaimed id reads as `NotFound`).
    pub(crate) blobs: Vec<Option<(Phys, u64)>>,
    /// Cumulative payload bytes over live mappings (what a private
    /// [`MemoryStore`] would report after the same puts).
    pub(crate) payload_bytes: u64,
    /// Durable mapping log (file backend only).
    pub(crate) log: Option<FileStore>,
}

/// Registry + generation behind one lock: lock ordering everywhere is
/// meta before shard, and `put` never holds both at once.
pub(crate) struct Meta {
    pub(crate) tenants: BTreeMap<String, TenantState>,
    pub(crate) generation: u64,
}

pub(crate) enum Backend {
    Memory,
    File { dir: PathBuf },
}

pub(crate) struct Inner {
    pub(crate) backend: Backend,
    pub(crate) nshards: usize,
    pub(crate) shards: Vec<Mutex<ShardState>>,
    pub(crate) meta: Mutex<Meta>,
    pub(crate) trace: Mutex<Trace>,
    /// GC crash-test hook: remaining byte budget for generation writes.
    /// `None` = unlimited. See [`SharedStore::set_crash_after_bytes`].
    pub(crate) crash_after: Mutex<Option<u64>>,
}

/// A multi-tenant, store-wide-deduplicating, sharded checkpoint store.
/// Cheap to clone (a handle); see the module docs for the architecture.
#[derive(Clone)]
pub struct SharedStore {
    pub(crate) inner: Arc<Inner>,
}

impl std::fmt::Debug for SharedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let meta = self.inner.meta.lock().expect("meta lock");
        f.debug_struct("SharedStore")
            .field("shards", &self.inner.nshards)
            .field("tenants", &meta.tenants.len())
            .field("generation", &meta.generation)
            .finish()
    }
}

pub(crate) fn shard_path(dir: &Path, shard: usize, generation: u64) -> PathBuf {
    dir.join(format!("shard-{shard}.g{generation}.log"))
}

pub(crate) fn tenant_path(dir: &Path, name: &str, generation: u64) -> PathBuf {
    dir.join(format!("tenant-{:016x}.g{generation}.log", xxh64(name.as_bytes(), 0)))
}

pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST.json")
}

/// Serialize one mapping-log record.
pub(crate) fn encode_mapping(m: Option<(Phys, u64)>) -> Vec<u8> {
    match m {
        Some((p, len)) => {
            let mut v = Vec::with_capacity(17);
            v.push(1);
            v.extend_from_slice(&p.shard.to_le_bytes());
            v.extend_from_slice(&p.idx.to_le_bytes());
            v.extend_from_slice(&len.to_le_bytes());
            v
        }
        None => vec![0],
    }
}

/// Parse one mapping-log record; `None` if malformed (treated as a
/// tombstone by recovery — degraded, never wrong bytes).
fn decode_mapping(b: &[u8]) -> Option<(Phys, u64)> {
    if b.len() != 17 || b[0] != 1 {
        return None;
    }
    let shard = u32::from_le_bytes([b[1], b[2], b[3], b[4]]);
    let idx = u32::from_le_bytes([b[5], b[6], b[7], b[8]]);
    let len = u64::from_le_bytes([b[9], b[10], b[11], b[12], b[13], b[14], b[15], b[16]]);
    Some((Phys { shard, idx }, len))
}

/// Render the manifest JSON for the given state.
pub(crate) fn manifest_json(nshards: usize, generation: u64, tenants: &[&str]) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(SHARED_SCHEMA.to_string())),
        ("shards", Json::Int(nshards as i64)),
        ("generation", Json::Int(generation as i64)),
        (
            "tenants",
            Json::Array(tenants.iter().map(|t| Json::Str(t.to_string())).collect()),
        ),
    ])
}

/// Durably replace `MANIFEST.json`: write a temp file, sync it, rename it
/// over the manifest. The rename is the commit point — a crash on either
/// side leaves a complete manifest naming a complete generation.
pub(crate) fn commit_manifest(dir: &Path, json: &Json) -> io::Result<()> {
    let tmp = dir.join("MANIFEST.tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(json.dump().as_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, manifest_path(dir))
}

/// Remove generation-suffixed files in `dir` not belonging to `keep_gen`
/// (plus any stranded `MANIFEST.tmp`). Best-effort hygiene after GC and on
/// open; never touches files outside the store's naming scheme.
pub(crate) fn remove_stale_generations(dir: &Path, keep_gen: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let keep = format!(".g{keep_gen}.log");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == "MANIFEST.tmp" {
            let _ = std::fs::remove_file(entry.path());
            continue;
        }
        let generational = (name.starts_with("shard-") || name.starts_with("tenant-"))
            && name.ends_with(".log")
            && name.contains(".g");
        if generational && !name.ends_with(&keep) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

// `Inner` holds `Box<dyn CheckpointStore>` (the trait is not `Send`-bounded);
// handles are cloned across sessions on one thread, and the `Arc` keeps the
// sharing shape right for a future `Send`-bounded store trait.
#[allow(clippy::arc_with_non_send_sync)]
impl SharedStore {
    /// Fresh in-memory shared store with `nshards` shards (clamped ≥ 1).
    /// Shard chunking follows the `KISHU_CHUNKING`/`KISHU_COMPRESS` env
    /// knobs; use [`SharedStore::in_memory_with`] to pin it.
    pub fn in_memory(nshards: usize) -> Self {
        Self::in_memory_with(nshards, crate::chunk::ChunkConfig::from_env())
    }

    /// Fresh in-memory shared store with an explicit per-shard chunk
    /// configuration (env-independent; what tests asserting chunk-layer
    /// behaviour should use).
    pub fn in_memory_with(nshards: usize, cfg: crate::chunk::ChunkConfig) -> Self {
        let nshards = nshards.max(1);
        let shards = (0..nshards)
            .map(|_| {
                Mutex::new(ShardState {
                    store: Box::new(MemoryStore::with_config(cfg.clone()))
                        as Box<dyn CheckpointStore>,
                    dedup: HashMap::new(),
                    refs: Vec::new(),
                    lens: Vec::new(),
                })
            })
            .collect();
        SharedStore {
            inner: Arc::new(Inner {
                backend: Backend::Memory,
                nshards,
                shards,
                meta: Mutex::new(Meta { tenants: BTreeMap::new(), generation: 0 }),
                trace: Mutex::new(Trace::disabled()),
                crash_after: Mutex::new(None),
            }),
        }
    }

    /// Create a fresh file-backed store in `dir` (wiping any store files
    /// already there), with `nshards` shards at generation 0.
    pub fn create(dir: impl AsRef<Path>, nshards: usize) -> io::Result<Self> {
        let dir = dir.as_ref();
        let nshards = nshards.max(1);
        std::fs::create_dir_all(dir)?;
        // Wipe every file of the store's naming scheme, any generation.
        for entry in std::fs::read_dir(dir)?.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("shard-")
                || name.starts_with("tenant-")
                || name == "MANIFEST.json"
                || name == "MANIFEST.tmp"
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        let mut shards = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let store = FileStore::create(shard_path(dir, i, 0))?;
            shards.push(Mutex::new(ShardState {
                store: Box::new(store) as Box<dyn CheckpointStore>,
                dedup: HashMap::new(),
                refs: Vec::new(),
                lens: Vec::new(),
            }));
        }
        commit_manifest(dir, &manifest_json(nshards, 0, &[]))?;
        Ok(SharedStore {
            inner: Arc::new(Inner {
                backend: Backend::File { dir: dir.to_path_buf() },
                nshards,
                shards,
                meta: Mutex::new(Meta { tenants: BTreeMap::new(), generation: 0 }),
                trace: Mutex::new(Trace::disabled()),
                crash_after: Mutex::new(None),
            }),
        })
    }

    /// Open an existing file-backed store, recovering from whatever a crash
    /// left behind: the manifest names the committed generation; shard and
    /// mapping logs recover their torn tails via [`FileStore::open`]; dedup
    /// maps and refcounts are rebuilt by scanning; files from uncommitted
    /// generations are swept away.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        let text = std::fs::read_to_string(manifest_path(dir))?;
        let j = Json::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {e:?}")))?;
        if j.get("schema").and_then(Json::as_str) != Some(SHARED_SCHEMA) {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "unknown manifest schema"));
        }
        let nshards = j
            .get("shards")
            .and_then(Json::as_i64)
            .filter(|&n| n >= 1)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "manifest shard count"))?
            as usize;
        let generation = j.get("generation").and_then(Json::as_i64).unwrap_or(0) as u64;
        let tenant_names: Vec<String> = j
            .get("tenants")
            .and_then(Json::as_array)
            .map(|a| a.iter().filter_map(|t| t.as_str().map(str::to_string)).collect())
            .unwrap_or_default();
        remove_stale_generations(dir, generation);

        let mut shards = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let path = shard_path(dir, i, generation);
            let store = if path.exists() { FileStore::open(&path)? } else { FileStore::create(&path)? };
            let count = store.blob_count();
            let mut dedup = HashMap::new();
            let mut lens = Vec::with_capacity(count as usize);
            for idx in 0..count {
                match store.get(idx) {
                    Ok(bytes) => {
                        // First writer wins, matching put's behavior.
                        dedup.entry(content_key(&bytes)).or_insert(idx as u32);
                        lens.push(bytes.len() as u64);
                    }
                    // Unreadable payload: keep the slot (ids are positional)
                    // but never dedup onto it.
                    Err(_) => lens.push(0),
                }
            }
            shards.push(Mutex::new(ShardState {
                store: Box::new(store) as Box<dyn CheckpointStore>,
                dedup,
                refs: vec![0; count as usize],
                lens,
            }));
        }

        let mut tenants = BTreeMap::new();
        for name in tenant_names {
            let path = tenant_path(dir, &name, generation);
            let log = if path.exists() { FileStore::open(&path)? } else { FileStore::create(&path)? };
            let mut blobs = Vec::new();
            let mut payload_bytes = 0u64;
            for rec in 0..log.blob_count() {
                let bytes = log.get(rec)?;
                let mapping = decode_mapping(&bytes).filter(|(p, _)| {
                    // A mapping may outrun its payload if the shard log lost
                    // a tail the mapping log kept: degrade to a tombstone.
                    (p.shard as usize) < nshards && {
                        let sh = shards[p.shard as usize].lock().expect("shard lock");
                        (p.idx as u64) < sh.store.blob_count()
                    }
                });
                if let Some((p, len)) = mapping {
                    let mut sh = shards[p.shard as usize].lock().expect("shard lock");
                    sh.refs[p.idx as usize] += 1;
                    payload_bytes += len;
                    blobs.push(Some((p, len)));
                } else {
                    blobs.push(None);
                }
            }
            tenants.insert(name, TenantState { blobs, payload_bytes, log: Some(log) });
        }

        Ok(SharedStore {
            inner: Arc::new(Inner {
                backend: Backend::File { dir: dir.to_path_buf() },
                nshards,
                shards,
                meta: Mutex::new(Meta { tenants, generation }),
                trace: Mutex::new(Trace::disabled()),
                crash_after: Mutex::new(None),
            }),
        })
    }

    /// The tenant view named `name`, registering it (durably, for a
    /// file-backed store) on first use. Tenant blob ids are dense and
    /// private to the view; see the module docs for the privacy contract.
    pub fn tenant(&self, name: &str) -> io::Result<TenantHandle> {
        let mut meta = self.inner.meta.lock().expect("meta lock");
        if !meta.tenants.contains_key(name) {
            let log = match &self.inner.backend {
                Backend::Memory => None,
                Backend::File { dir } => {
                    Some(FileStore::create(tenant_path(dir, name, meta.generation))?)
                }
            };
            meta.tenants.insert(
                name.to_string(),
                TenantState { blobs: Vec::new(), payload_bytes: 0, log },
            );
            if let Backend::File { dir } = &self.inner.backend {
                let names: Vec<&str> = meta.tenants.keys().map(String::as_str).collect();
                commit_manifest(dir, &manifest_json(self.inner.nshards, meta.generation, &names))?;
            }
        }
        Ok(TenantHandle { inner: Arc::clone(&self.inner), name: name.to_string() })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.nshards
    }

    /// Current GC generation (0 until the first collection commits).
    pub fn generation(&self) -> u64 {
        self.inner.meta.lock().expect("meta lock").generation
    }

    /// Registered tenant names, sorted.
    pub fn tenant_names(&self) -> Vec<String> {
        self.inner.meta.lock().expect("meta lock").tenants.keys().cloned().collect()
    }

    /// True aggregate storage accounting across all shards — what the
    /// shared deployment actually costs, as opposed to the logical view
    /// each [`TenantHandle::stats`] reports.
    pub fn stats(&self) -> StoreStats {
        let mut total = StoreStats::default();
        for shard in &self.inner.shards {
            let st = shard.lock().expect("shard lock").store.stats();
            total.blobs += st.blobs;
            total.payload_bytes += st.payload_bytes;
            total.physical_bytes += st.physical_bytes;
        }
        total
    }

    /// Aggregate chunk-level accounting across all shards, for shards
    /// running the v2 chunked representation. `None` when no shard has a
    /// chunk layer. Like [`SharedStore::stats`], this is the operator's
    /// view — tenant handles never expose chunk counters (their
    /// [`CheckpointStore::chunk_stats`] stays `None`), because physical
    /// chunk sharing is exactly the cross-tenant signal the privacy
    /// contract forbids leaking.
    pub fn chunk_stats(&self) -> Option<crate::ChunkStats> {
        let mut total = crate::ChunkStats::default();
        let mut any = false;
        for shard in &self.inner.shards {
            if let Some(cs) = shard.lock().expect("shard lock").store.chunk_stats() {
                any = true;
                total.chunks += cs.chunks;
                total.chunk_refs += cs.chunk_refs;
                total.raw_bytes += cs.raw_bytes;
                total.stored_bytes += cs.stored_bytes;
            }
        }
        any.then_some(total)
    }

    /// Sum of every tenant's logical payload bytes (what N private stores
    /// would have stored).
    pub fn logical_payload_bytes(&self) -> u64 {
        let meta = self.inner.meta.lock().expect("meta lock");
        meta.tenants.values().map(|t| t.payload_bytes).sum()
    }

    /// Store-wide dedup ratio: logical bytes over physical payload bytes
    /// (≥ 1.0; 1.0 means no cross- or intra-tenant redundancy was found).
    pub fn dedup_ratio(&self) -> f64 {
        let physical = self.stats().payload_bytes;
        if physical == 0 {
            return 1.0;
        }
        self.logical_payload_bytes() as f64 / physical as f64
    }

    /// Attach an observability trace to the store and its shard backends.
    /// Purely observational, like every trace in this codebase.
    pub fn attach_trace(&self, trace: &Trace) {
        *self.inner.trace.lock().expect("trace lock") = trace.clone();
        for shard in &self.inner.shards {
            shard.lock().expect("shard lock").store.attach_trace(trace);
        }
    }

    /// Crash-test hook for GC: the next collection may write at most
    /// `budget` bytes of new-generation files before "the machine dies" —
    /// the file in flight is truncated at the exact budget byte and the
    /// collection aborts with `ErrorKind::Interrupted`, leaving the
    /// committed generation untouched. File backend only. `None` disables.
    pub fn set_crash_after_bytes(&self, budget: Option<u64>) {
        *self.inner.crash_after.lock().expect("crash lock") = budget;
    }

    /// Sync every shard log and mapping log to the durable medium.
    pub fn sync_all(&self) -> io::Result<()> {
        for shard in &self.inner.shards {
            shard.lock().expect("shard lock").store.sync()?;
        }
        let mut meta = self.inner.meta.lock().expect("meta lock");
        for t in meta.tenants.values_mut() {
            if let Some(log) = &mut t.log {
                log.sync()?;
            }
        }
        Ok(())
    }

    /// Structural invariant check, for tests: every mapping points at a
    /// real payload of the recorded length; stored refcounts equal (strict)
    /// or dominate (non-strict, for runs where injected faults may have
    /// leaked a count in the safe direction) the references actually
    /// reachable from tenant mappings; dedup entries are in range. Returns
    /// a description of the first violation.
    pub fn check_invariants(&self, strict: bool) -> Result<(), String> {
        let meta = self.inner.meta.lock().expect("meta lock");
        let mut recomputed: Vec<Vec<u64>> = Vec::with_capacity(self.inner.nshards);
        for shard in &self.inner.shards {
            recomputed.push(vec![0; shard.lock().expect("shard lock").refs.len()]);
        }
        for (name, t) in &meta.tenants {
            for (id, m) in t.blobs.iter().enumerate() {
                let Some((p, len)) = m else { continue };
                let counts = recomputed
                    .get_mut(p.shard as usize)
                    .ok_or_else(|| format!("{name}/{id}: shard {} out of range", p.shard))?;
                let slot = counts
                    .get_mut(p.idx as usize)
                    .ok_or_else(|| format!("{name}/{id}: idx {} out of range", p.idx))?;
                *slot += 1;
                let sh = self.inner.shards[p.shard as usize].lock().expect("shard lock");
                if sh.lens[p.idx as usize] != *len {
                    return Err(format!(
                        "{name}/{id}: recorded len {len} != stored len {}",
                        sh.lens[p.idx as usize]
                    ));
                }
            }
        }
        for (i, shard) in self.inner.shards.iter().enumerate() {
            let sh = shard.lock().expect("shard lock");
            if sh.refs.len() as u64 != sh.store.blob_count() {
                return Err(format!("shard {i}: refs len != blob count"));
            }
            for (idx, (&stored, &actual)) in sh.refs.iter().zip(&recomputed[i]).enumerate() {
                if strict && stored != actual {
                    return Err(format!("shard {i} blob {idx}: refcount {stored} != {actual}"));
                }
                if stored < actual {
                    return Err(format!(
                        "shard {i} blob {idx}: refcount {stored} below live references {actual}"
                    ));
                }
            }
            for (key, &idx) in &sh.dedup {
                if idx as usize >= sh.refs.len() {
                    return Err(format!("shard {i}: dedup entry {key:?} out of range"));
                }
            }
        }
        Ok(())
    }
}

/// One tenant's [`CheckpointStore`] view over a [`SharedStore`]. Dense
/// private blob ids; observationally identical to a private store.
#[derive(Clone)]
pub struct TenantHandle {
    inner: Arc<Inner>,
    name: String,
}

impl TenantHandle {
    /// The tenant name this view is registered under.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for TenantHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantHandle").field("name", &self.name).finish()
    }
}

impl CheckpointStore for TenantHandle {
    fn put(&mut self, bytes: &[u8]) -> io::Result<BlobId> {
        let key = content_key(bytes);
        let shard_i = shard_of(key, self.inner.nshards);
        let trace = self.inner.trace.lock().expect("trace lock").clone();
        let mut sp = trace.span("shared.put");
        sp.arg("shard", shard_i);
        sp.arg("bytes", bytes.len());
        // Phase 1 under the shard lock only: dedup-or-append + refcount.
        // The lock is released before the meta lock is taken, so `put`
        // never holds two locks (no ordering edge against GC or `get`).
        let (phys, fresh) = {
            let mut sh = self.inner.shards[shard_i].lock().expect("shard lock");
            match sh.dedup.get(&key).copied() {
                Some(idx) => {
                    sh.refs[idx as usize] += 1;
                    (Phys { shard: shard_i as u32, idx }, false)
                }
                None => {
                    let idx = sh.store.put(bytes)? as u32;
                    sh.dedup.insert(key, idx);
                    sh.refs.push(1);
                    sh.lens.push(bytes.len() as u64);
                    debug_assert_eq!(sh.refs.len() - 1, idx as usize);
                    (Phys { shard: shard_i as u32, idx }, true)
                }
            }
        };
        sp.arg("dedup_hit", !fresh);
        trace.observe("shared.put_bytes", bytes.len() as u64);
        // Phase 2 under the meta lock: assign the dense tenant id and
        // append the mapping record.
        let mut meta = self.inner.meta.lock().expect("meta lock");
        let t = meta.tenants.get_mut(&self.name).expect("tenant registered by SharedStore::tenant");
        let len = bytes.len() as u64;
        if let Some(log) = &mut t.log {
            if let Err(e) = log.put(&encode_mapping(Some((phys, len)))) {
                // The mapping never existed, so the tenant id is not
                // allocated; release the reference taken in phase 1 (a
                // fresh payload stays in the shard at refcount 0 — dead
                // weight the next GC reclaims, never a correctness issue).
                drop(meta);
                let mut sh = self.inner.shards[shard_i].lock().expect("shard lock");
                sh.refs[phys.idx as usize] -= 1;
                return Err(e);
            }
        }
        t.blobs.push(Some((phys, len)));
        t.payload_bytes += len;
        Ok((t.blobs.len() - 1) as BlobId)
    }

    fn get(&self, id: BlobId) -> io::Result<Vec<u8>> {
        // Error shape matches MemoryStore so a tenant cannot tell the
        // difference between its view and a private store.
        let not_found = || io::Error::new(io::ErrorKind::NotFound, format!("no blob {id}"));
        let (phys, _len) = {
            let meta = self.inner.meta.lock().expect("meta lock");
            let t = meta.tenants.get(&self.name).expect("tenant registered");
            t.blobs.get(id as usize).copied().ok_or_else(not_found)?.ok_or_else(not_found)?
        };
        let trace = self.inner.trace.lock().expect("trace lock").clone();
        let mut sp = trace.span("shared.get");
        sp.arg("shard", phys.shard);
        sp.arg("blob", id);
        let sh = self.inner.shards[phys.shard as usize].lock().expect("shard lock");
        sh.store.get(phys.idx as u64)
    }

    fn blob_count(&self) -> u64 {
        let meta = self.inner.meta.lock().expect("meta lock");
        meta.tenants.get(&self.name).expect("tenant registered").blobs.len() as u64
    }

    fn stats(&self) -> StoreStats {
        // Logical accounting, mirroring MemoryStore: a tenant must not be
        // able to observe its neighbors (or the dedup they induce) through
        // sizes. True physical usage lives on SharedStore::stats.
        let meta = self.inner.meta.lock().expect("meta lock");
        let t = meta.tenants.get(&self.name).expect("tenant registered");
        StoreStats {
            blobs: t.blobs.len() as u64,
            payload_bytes: t.payload_bytes,
            physical_bytes: t.payload_bytes,
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let trace = self.inner.trace.lock().expect("trace lock").clone();
        let _sp = trace.span("shared.sync");
        for shard in &self.inner.shards {
            shard.lock().expect("shard lock").store.sync()?;
        }
        let mut meta = self.inner.meta.lock().expect("meta lock");
        if let Some(log) = &mut meta.tenants.get_mut(&self.name).expect("tenant registered").log {
            log.sync()?;
        }
        Ok(())
    }

    fn flush_barrier(&mut self) -> io::Result<()> {
        // Group-commit barrier: drain every shard's pending buffer and the
        // tenant's mapping log so a reopened store sees everything put so
        // far. No fault draw and no per-put work — purely an ordering
        // point, matching the trait contract.
        for shard in &self.inner.shards {
            shard.lock().expect("shard lock").store.flush_barrier()?;
        }
        let mut meta = self.inner.meta.lock().expect("meta lock");
        if let Some(log) = &mut meta.tenants.get_mut(&self.name).expect("tenant registered").log {
            log.flush_barrier()?;
        }
        Ok(())
    }

    // Note: `put_with_receipt` and `chunk_stats` deliberately keep their
    // opaque trait defaults. A truthful receipt ("your put deduped against
    // an existing chunk") or chunk counters would tell a tenant what its
    // neighbors have stored — the exact side channel the observational-
    // privacy contract closes. Physical truth is an operator view:
    // [`SharedStore::stats`] / [`SharedStore::chunk_stats`].

    fn attach_trace(&mut self, trace: &Trace) {
        *self.inner.trace.lock().expect("trace lock") = trace.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kishu-shared-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn tenant_ids_are_dense_and_private() {
        let store = SharedStore::in_memory(4);
        let mut a = store.tenant("alice").expect("tenant");
        let mut b = store.tenant("bob").expect("tenant");
        assert_eq!(a.put(b"shared bytes").expect("put"), 0);
        assert_eq!(b.put(b"shared bytes").expect("put"), 0, "b's ids start at 0 too");
        assert_eq!(a.put(b"alice only").expect("put"), 1);
        assert_eq!(a.get(0).expect("get"), b"shared bytes");
        assert_eq!(b.get(0).expect("get"), b"shared bytes");
        assert_eq!(a.get(1).expect("get"), b"alice only");
        let err = b.get(1).expect_err("b has one blob");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(format!("{err}"), "no blob 1", "error shape matches MemoryStore");
    }

    #[test]
    fn cross_tenant_dedup_stores_identical_bytes_once() {
        let store = SharedStore::in_memory(4);
        let mut a = store.tenant("alice").expect("tenant");
        let mut b = store.tenant("bob").expect("tenant");
        let payload = vec![42u8; 10_000];
        a.put(&payload).expect("put");
        b.put(&payload).expect("put");
        b.put(&payload).expect("repeat within tenant");
        let physical = store.stats();
        assert_eq!(physical.blobs, 1, "one physical copy");
        assert_eq!(physical.payload_bytes, 10_000);
        assert_eq!(store.logical_payload_bytes(), 30_000);
        assert!((store.dedup_ratio() - 3.0).abs() < 1e-9);
        // Logical views are oblivious.
        assert_eq!(a.stats().payload_bytes, 10_000);
        assert_eq!(b.stats().payload_bytes, 20_000);
        assert_eq!(b.stats().physical_bytes, 20_000);
        store.check_invariants(true).expect("invariants");
    }

    #[test]
    fn payloads_spread_across_shards() {
        let store = SharedStore::in_memory(4);
        let mut t = store.tenant("t").expect("tenant");
        for i in 0..64u32 {
            t.put(format!("payload number {i}").as_bytes()).expect("put");
        }
        let occupied = store
            .inner
            .shards
            .iter()
            .filter(|s| s.lock().expect("lock").store.blob_count() > 0)
            .count();
        assert!(occupied > 1, "content-key prefix routing uses multiple shards");
        for i in 0..64u64 {
            assert_eq!(t.get(i).expect("get"), format!("payload number {i}").as_bytes());
        }
    }

    #[test]
    fn file_backed_store_reopens_with_views_intact() {
        let dir = temp_dir("reopen");
        {
            let store = SharedStore::create(&dir, 3).expect("create");
            let mut a = store.tenant("alice").expect("tenant");
            let mut b = store.tenant("bob").expect("tenant");
            a.put(b"common").expect("put");
            a.put(b"alice's own").expect("put");
            b.put(b"common").expect("put");
            store.sync_all().expect("sync");
        }
        let store = SharedStore::open(&dir).expect("open");
        assert_eq!(store.tenant_names(), vec!["alice".to_string(), "bob".to_string()]);
        let a = store.tenant("alice").expect("tenant");
        let b = store.tenant("bob").expect("tenant");
        assert_eq!(a.blob_count(), 2);
        assert_eq!(a.get(0).expect("get"), b"common");
        assert_eq!(a.get(1).expect("get"), b"alice's own");
        assert_eq!(b.blob_count(), 1);
        assert_eq!(b.get(0).expect("get"), b"common");
        assert_eq!(store.stats().blobs, 2, "dedup survives reopen");
        store.check_invariants(true).expect("invariants after reopen");
        // Dedup index was rebuilt: a repeat write still dedups.
        let mut b = b;
        b.put(b"common").expect("put");
        assert_eq!(store.stats().blobs, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_mapping_tail_degrades_to_missing_blob() {
        let dir = temp_dir("torn-map");
        let tenant_log = {
            let store = SharedStore::create(&dir, 2).expect("create");
            let mut a = store.tenant("alice").expect("tenant");
            a.put(b"first").expect("put");
            a.put(b"second").expect("put");
            store.sync_all().expect("sync");
            tenant_path(&dir, "alice", 0)
        };
        // Tear the tail of the mapping log mid-record.
        let len = std::fs::metadata(&tenant_log).expect("meta").len();
        let f = std::fs::OpenOptions::new().write(true).open(&tenant_log).expect("open");
        f.set_len(len - 5).expect("truncate");
        drop(f);
        let store = SharedStore::open(&dir).expect("recover");
        let a = store.tenant("alice").expect("tenant");
        assert_eq!(a.blob_count(), 1, "torn mapping record truncated away");
        assert_eq!(a.get(0).expect("get"), b"first");
        store.check_invariants(true).expect("invariants");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_env_knob_parses_and_clamps() {
        // Can't set env vars safely in-process; check the default and the
        // clamp bounds via the constant contract.
        let n = default_shard_count();
        assert!((1..=64).contains(&n));
    }

    #[test]
    fn shard_routing_is_uniform_for_any_shard_count() {
        // Regression for the original router, which consulted only the top
        // 16 hash bits and reduced with a biased modulo: over real content
        // keys some shards ran hot while others sat near-empty. With the
        // remixed multiply-shift router, 10k distinct keys must land close
        // to uniformly for small prime and non-prime shard counts alike.
        let keys: Vec<ContentKey> =
            (0..10_000u32).map(|i| content_key(format!("cell output #{i}").as_bytes())).collect();
        for &n in &[3usize, 5, 7] {
            let mut loads = vec![0u64; n];
            for &k in &keys {
                let s = shard_of(k, n);
                assert!(s < n, "routing must stay in range");
                loads[s] += 1;
            }
            let max = *loads.iter().max().expect("nonempty");
            let min = *loads.iter().min().expect("nonempty");
            assert!(min > 0, "n={n}: some shard got nothing: {loads:?}");
            assert!(
                (max as f64) / (min as f64) < 1.25,
                "n={n}: shard load skew {loads:?} (max/min = {:.3})",
                max as f64 / min as f64
            );
        }
    }

    #[test]
    fn shared_chunk_stats_aggregate_cross_tenant_chunk_dedup() {
        // One shard so the two near-identical (different content key, hence
        // possibly different shard) blobs land in the same chunk ledger —
        // chunk dedup scope is the shard, see the module docs. Config is
        // pinned so the `KISHU_CHUNKING=0` CI matrix leg can't turn the
        // layer off under the test.
        let store = SharedStore::in_memory_with(1, crate::chunk::ChunkConfig::default());
        let mut a = store.tenant("alice").expect("tenant");
        let mut b = store.tenant("bob").expect("tenant");
        let big: Vec<u8> = (0..150_000u32).map(|i| (i % 251) as u8 ^ (i / 997) as u8).collect();
        a.put(&big).expect("put");
        // Bob writes a small mutation of Alice's payload: different content
        // key (so blob-level dedup misses) but nearly all chunks shared.
        let mut edited = big.clone();
        edited[75_000] ^= 0x5A;
        b.put(&edited).expect("put");
        // Tenant views stay opaque — chunk counters would leak neighbors.
        assert_eq!(a.chunk_stats(), None);
        assert_eq!(b.chunk_stats(), None);
        let cs = store.chunk_stats().expect("pinned config chunks");
        assert!(cs.chunk_refs > cs.chunks, "cross-tenant chunk dedup fired: {cs:?}");
        assert!(
            store.stats().physical_bytes < (big.len() + edited.len()) as u64 / 2,
            "two near-identical blobs must cost well under their logical sum"
        );
        store.check_invariants(true).expect("invariants");
    }

    #[test]
    fn tenant_flush_barrier_makes_puts_reopenable() {
        let dir = temp_dir("barrier");
        {
            let store = SharedStore::create(&dir, 2).expect("create");
            let mut a = store.tenant("alice").expect("tenant");
            a.put(b"barrier me").expect("put");
            a.flush_barrier().expect("barrier");
            // No sync_all: the barrier alone must order the bytes into the
            // logs (durability modulo the OS, which tests can't force here).
        }
        let store = SharedStore::open(&dir).expect("open");
        let a = store.tenant("alice").expect("tenant");
        assert_eq!(a.blob_count(), 1);
        assert_eq!(a.get(0).expect("get"), b"barrier me");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapping_records_roundtrip() {
        let m = Some((Phys { shard: 3, idx: 0x0102_0304 }, 0x1122_3344_5566_7788));
        assert_eq!(decode_mapping(&encode_mapping(m)), m);
        assert_eq!(encode_mapping(None), vec![0]);
        assert_eq!(decode_mapping(&[0]), None);
        assert_eq!(decode_mapping(b"garbage!!"), None);
    }
}
