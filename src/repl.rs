//! The interactive shell behind `kishu-repl` — the demo experience: type
//! cells, watch them checkpoint, and time-travel with `%` commands (the
//! paper's in-Jupyter Command Palette, §3.2, as a terminal).

use kishu::session::{KishuConfig, KishuSession};
use kishu::NodeId;
use kishu_minipy::repr::repr;

/// A REPL wrapping one Kishu session.
pub struct Repl {
    session: KishuSession,
}

impl Default for Repl {
    fn default() -> Self {
        Self::new(KishuConfig::default())
    }
}

impl Repl {
    /// New in-memory session.
    pub fn new(config: KishuConfig) -> Self {
        Repl {
            session: KishuSession::in_memory(config),
        }
    }

    /// Access the wrapped session.
    pub fn session(&mut self) -> &mut KishuSession {
        &mut self.session
    }

    /// Handle one input: a `%command` or a complete cell. Returns the lines
    /// to print.
    pub fn handle(&mut self, input: &str) -> Vec<String> {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return Vec::new();
        }
        if let Some(cmd) = trimmed.strip_prefix('%') {
            return self.command(cmd);
        }
        self.run_cell(input)
    }

    fn run_cell(&mut self, src: &str) -> Vec<String> {
        let mut out = Vec::new();
        let src = if src.ends_with('\n') {
            src.to_string()
        } else {
            format!("{src}\n")
        };
        match self.session.run_cell(&src) {
            Err(e) => out.push(format!("syntax error: {e}")),
            Ok(report) => {
                // The REPL always runs with auto-checkpoint on, so every
                // cell commits a node.
                let node = report.node.expect("repl sessions auto-checkpoint");
                out.extend(report.outcome.output.iter().cloned());
                if let Some(v) = &report.outcome.value_repr {
                    out.push(format!("Out[{}]: {v}", node.0));
                }
                if let Some(e) = &report.outcome.error {
                    out.push(format!("error: {e}"));
                }
                let degraded = if report.blobs_dropped > 0 {
                    format!(", {} blob(s) dropped -> fallback", report.blobs_dropped)
                } else {
                    String::new()
                };
                out.push(format!(
                    "[kishu] checkpoint {} ({} co-variable(s), {} B, {:?} tracking{degraded})",
                    node.0,
                    report.updated.len(),
                    report.checkpoint_bytes,
                    report.tracking_time,
                ));
            }
        }
        out
    }

    fn command(&mut self, cmd: &str) -> Vec<String> {
        let mut parts = cmd.split_whitespace();
        match parts.next() {
            Some("help") => vec![
                "%log                 show the checkpoint graph (head marked *)".into(),
                "%vars                list session variables".into(),
                "%covars              list co-variables (connected components)".into(),
                "%undo                checkout the parent of the head".into(),
                "%checkout <id>       checkout a checkpoint by id".into(),
                "%stats               storage and tracking totals".into(),
                "%help                this text".into(),
                "%quit                exit".into(),
            ],
            Some("log") => self.session.log(),
            Some("vars") => {
                let mut lines = Vec::new();
                let names = self.session.interp.globals.names();
                if names.is_empty() {
                    lines.push("(no variables)".into());
                }
                for name in names {
                    let obj = self.session.interp.globals.peek(&name).expect("listed");
                    lines.push(format!("{name} = {}", repr(&self.session.interp.heap, obj)));
                }
                lines
            }
            Some("covars") => self
                .session
                .covariables()
                .iter()
                .map(|c| format!("{{{}}}", c.iter().cloned().collect::<Vec<_>>().join(", ")))
                .collect(),
            Some("undo") => {
                let head = self.session.head();
                match self.session.graph().node(head).parent {
                    None => vec!["already at the root".into()],
                    Some(parent) => self.do_checkout(parent),
                }
            }
            Some("checkout") => match parts.next().and_then(|s| s.parse::<u32>().ok()) {
                Some(id) => self.do_checkout(NodeId(id)),
                None => vec!["usage: %checkout <id> (see %log)".into()],
            },
            Some("stats") => {
                let store = self.session.store_stats();
                let m = self.session.metrics();
                vec![
                    format!(
                        "checkpoints: {} nodes, {} blobs, {} payload bytes",
                        self.session.graph().len(),
                        store.blobs,
                        store.payload_bytes
                    ),
                    format!(
                        "totals: {:?} cell time, {:?} tracking, {:?} checkpointing",
                        m.total_cell_time(),
                        m.total_tracking(),
                        m.total_checkpoint()
                    ),
                ]
            }
            Some(other) => vec![format!("unknown command %{other} (try %help)")],
            None => vec!["empty command (try %help)".into()],
        }
    }

    fn do_checkout(&mut self, target: NodeId) -> Vec<String> {
        match self.session.checkout(target) {
            Ok(report) => vec![format!(
                "[kishu] checked out {} — loaded {}, recomputed {}, removed {}, {} identical, in {:?}",
                target.0,
                report.loaded.len(),
                report.recomputed.len(),
                report.removed.len(),
                report.identical,
                report.wall_time
            )],
            Err(e) => vec![format!("checkout failed: {e}")],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(repl: &mut Repl, input: &str) -> String {
        repl.handle(input).join("\n")
    }

    #[test]
    fn cells_execute_and_checkpoint() {
        let mut r = Repl::default();
        let out = output(&mut r, "x = [1, 2, 3]");
        assert!(out.contains("checkpoint 1"));
        let out = output(&mut r, "sum(x)");
        assert!(out.contains("Out[2]: 6"));
    }

    #[test]
    fn undo_restores_previous_state() {
        let mut r = Repl::default();
        r.handle("ls = [1]");
        r.handle("ls.append(2)");
        assert!(output(&mut r, "len(ls)").contains("Out[3]: 2"));
        let out = output(&mut r, "%undo"); // undo the probe (no-op state)
        assert!(out.contains("checked out"));
        let out = output(&mut r, "%checkout 1");
        assert!(out.contains("checked out 1"));
        assert!(output(&mut r, "len(ls)").contains(": 1"));
    }

    #[test]
    fn introspection_commands() {
        let mut r = Repl::default();
        r.handle("a = 1\nb = a");
        let vars = output(&mut r, "%vars");
        assert!(vars.contains("a = 1") && vars.contains("b = 1"));
        let covars = output(&mut r, "%covars");
        assert!(covars.contains("{a, b}"), "{covars}");
        let log = output(&mut r, "%log");
        assert!(log.contains('*'));
        let stats = output(&mut r, "%stats");
        assert!(stats.contains("checkpoints"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut r = Repl::default();
        let out = output(&mut r, "boom(");
        assert!(out.contains("syntax error"));
        let out = output(&mut r, "boom()");
        assert!(out.contains("error:"));
        assert!(out.contains("checkpoint"), "failed cells still checkpoint");
        let out = output(&mut r, "%nonsense");
        assert!(out.contains("unknown command"));
        let out = output(&mut r, "%checkout notanumber");
        assert!(out.contains("usage"));
        let out = output(&mut r, "%checkout 999");
        assert!(out.contains("checkout failed"));
    }

    #[test]
    fn undo_at_root_is_graceful() {
        let mut r = Repl::default();
        let out = output(&mut r, "%undo");
        assert!(out.contains("already at the root"));
    }
}
