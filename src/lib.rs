//! # kishu-repro — workspace façade
//!
//! Re-exports the whole Kishu reproduction so the root package's examples
//! and cross-crate integration tests have one import surface. See the
//! individual crates for the real APIs:
//!
//! * [`kishu`] — the system (co-variables, delta detection, checkpoint
//!   graph, incremental checkout, fallback recomputation);
//! * [`kishu_kernel`] / [`kishu_minipy`] — the simulated notebook kernel
//!   and its cell language;
//! * [`kishu_pickle`] / [`kishu_storage`] / [`kishu_libsim`] — the
//!   serialization, storage, and library-class substrates;
//! * [`kishu_baselines`] — CRIU(-Inc), DumpSession, ElasticNotebook,
//!   Det-replay, IPyFlow-style tracking;
//! * [`kishu_workloads`] — the synthesized evaluation notebooks.

pub mod repl;

pub use kishu;
pub use kishu_baselines;
pub use kishu_kernel;
pub use kishu_libsim;
pub use kishu_minipy;
pub use kishu_pickle;
pub use kishu_storage;
pub use kishu_workloads;
