//! `kishu-repl` — an interactive time-traveling notebook in the terminal.
//!
//! ```text
//! cargo run --bin kishu-repl
//! In[1]> df = read_csv('sales', 1000, 6, 42)
//! In[2]> df = df.drop('c2')
//! In[3]> %undo
//! ```
//!
//! Multi-line cells: end a line with `:` or `\` to continue; finish with an
//! empty line. `%help` lists the commands.

use std::io::{self, BufRead, Write};

use kishu::session::KishuConfig;
use kishu_repro::repl::Repl;

fn main() {
    let mut repl = Repl::new(KishuConfig::default());
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    println!("kishu-repl — time-traveling notebook (%help for commands, %quit to exit)");
    let mut buffer = String::new();
    let mut cell_no = 1;
    loop {
        if buffer.is_empty() {
            print!("In[{cell_no}]> ");
        } else {
            print!("   ...> ");
        }
        stdout.flush().expect("stdout");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let trimmed_end = line.trim_end();
        if buffer.is_empty() && trimmed_end.trim() == "%quit" {
            break;
        }
        // Continuation: an open block (line ends with ':'), an explicit
        // backslash, or we're already inside a buffered cell and the line
        // is non-empty.
        let continues = trimmed_end.ends_with(':')
            || trimmed_end.ends_with('\\')
            || (!buffer.is_empty() && !trimmed_end.trim().is_empty());
        buffer.push_str(trimmed_end.trim_end_matches('\\'));
        buffer.push('\n');
        if continues {
            continue;
        }
        let input = std::mem::take(&mut buffer);
        if input.trim().is_empty() {
            continue;
        }
        for out in repl.handle(&input) {
            println!("{out}");
        }
        cell_no += 1;
    }
    println!("bye");
}
